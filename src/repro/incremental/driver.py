"""The load → diff → warm-run → save loop.

:func:`analyze_with_store` is the incremental counterpart of
:func:`repro.typestate.client.run_typestate` and what
``repro-swift analyze --store DIR`` calls: it fingerprints the program
and configuration, loads the matching snapshot (if any), invalidates
stored entries whose body or cone changed, runs the engine with the
survivors as a warm start, and — when the run finished within budget —
writes the merged snapshot back.  Timed-out runs are never saved: a
stored context must be a *finished* fixpoint, and a partial table would
be trusted as complete by the next warm run.

Repeated warm runs in one process (watch loops, benchmark drivers, the
test suite, the analysis service) used to re-read and re-decode the
snapshot every call — enough JSON and state decoding that a warm run
could lose on wall clock despite doing a fraction of the analysis
work.  A process-level decode cache (:class:`WarmCache`) keys the
built :class:`WarmStart` on (store root, config fingerprint), with the
snapshot file identity and the program fingerprints validating each
hit; engines never mutate a ``WarmStart`` (activation copies rows into
their own tables), so sharing one across runs — sequential or
concurrent — is sound.  The cache is a true LRU behind one lock: hits
refresh recency, insertion over capacity evicts the least recently
used entry, and every operation is atomic, so the service daemon's
request threads can hammer one shared instance.  The wall time
actually spent on load + diff + decode is reported per run as
``Metrics.store_load_seconds``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.framework.config import AnalysisConfig
from repro.framework.metrics import Budget
from repro.framework.session import analysis_session
from repro.incremental.codec import Codec
from repro.incremental.fingerprint import (
    ProgramFingerprints,
    alias_facts,
    config_fingerprint,
)
from repro.incremental.invalidate import (
    InvalidationPlan,
    build_snapshot,
    build_warm_start,
    diff_fingerprints,
)
from repro.incremental.store import Snapshot, SummaryStore, project_frontier
from repro.ir.cfg import ControlFlowGraphs
from repro.ir.program import Program
from repro.typestate.client import TypestateReport, make_analyses
from repro.typestate.dfa import TypestateProperty

#: Canonical registry domain names back to the short spellings the
#: codec and ``make_analyses`` use.  ``analyze_with_store`` is
#: type-state only: the snapshot codec encodes type-state summaries.
_SHORT_DOMAINS = {
    "typestate-simple": "simple",
    "typestate-full": "full",
    "typestate-interval": "interval-typestate",
}


class WarmCache:
    """Bounded, thread-safe, true-LRU cache of decoded warm starts.

    Keys are ``(store root, config fingerprint)``.  Each entry carries
    the snapshot file signature and program fingerprints it was built
    from, so a save to the store or an edit to the program misses
    naturally.  A hit refreshes recency (move-to-end); inserting over
    capacity evicts the least recently used entry.  One lock covers
    check + reorder + insert, so concurrent request threads can share
    a single instance without torn lookups.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str], Tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(
        self, key: Tuple[str, str], signature, fp_key
    ) -> Optional[Tuple]:
        """The cached ``(snapshot, plan, warm)`` triple, or ``None``.

        A stale entry (different file signature or program
        fingerprints) counts as a miss but is left in place: the
        caller re-decodes and overwrites it via :meth:`insert`.
        """
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is not None
                and entry[0] == signature
                and entry[1] == fp_key
            ):
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[2], entry[3], entry[4]
            self.misses += 1
            return None

    def insert(
        self, key: Tuple[str, str], signature, fp_key, snapshot, plan, warm
    ) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = (signature, fp_key, snapshot, plan, warm)

    def invalidate(self, key: Tuple[str, str]) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: Process-level WarmStart decode cache; long-lived hosts (the service
#: daemon) construct their own bounded instance instead.
_WARM_CACHE = WarmCache(capacity=64)


def clear_warm_cache() -> None:
    """Drop every cached decoded warm start (tests, long-lived hosts)."""
    _WARM_CACHE.clear()


def _snapshot_signature(store: SummaryStore, config_fp: str):
    """File identity of the stored snapshot, or None when absent."""
    try:
        stat = store.path_for(config_fp).stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def _frontier_signature(store: SummaryStore, config_fp: str):
    """File identity of the stored frontier projection, or None."""
    try:
        stat = store.frontier_path_for(config_fp).stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def write_frontier(
    store: SummaryStore, snapshot: Snapshot, program: Program
):
    """Persist ``snapshot``'s entry/exit-only frontier projection.

    Called right after every snapshot save (and to backfill a missing
    projection next to a pre-existing snapshot), so demand queries can
    decode O(frontier) instead of O(program) — DESIGN §13.
    """
    cfgs = ControlFlowGraphs(program)
    exits = {proc: cfgs.exit(proc).index for proc in program.names()}
    return store.save_frontier(project_frontier(snapshot, exits))


def _load_warm(
    store: SummaryStore,
    config_fp: str,
    fingerprints: ProgramFingerprints,
    codec: Codec,
    cache: WarmCache,
):
    """Load + diff + decode, through the decode cache.

    Returns ``(snapshot, plan, warm)`` — all ``None``/``None``/``None``
    on a cold start.  The cached ``WarmStart`` is returned as-is:
    engines only read it (context activation copies rows into the
    run's own tables), which is what makes the share safe.
    """
    signature = _snapshot_signature(store, config_fp)
    key = (str(store.root.resolve()), config_fp)
    fp_key = fingerprints.as_dict()
    if signature is not None:
        hit = cache.lookup(key, signature, fp_key)
        if hit is not None:
            return hit
    snapshot = store.load(config_fp)
    if snapshot is None:
        cache.invalidate(key)
        return None, None, None
    plan = diff_fingerprints(snapshot.fingerprints, fingerprints)
    warm = build_warm_start(snapshot, plan, codec)
    if signature is not None:
        cache.insert(key, signature, fp_key, snapshot, plan, warm)
    return snapshot, plan, warm


@dataclass
class IncrementalOutcome:
    """What one ``analyze --store`` run did, beyond the report itself."""

    report: TypestateReport
    config_fp: str
    cold: bool  # no usable snapshot existed
    store_hits: int
    store_misses: int
    store_invalidated: int
    valid: FrozenSet[str] = frozenset()  # procs whose stored entries survived
    invalidated: FrozenSet[str] = frozenset()
    added: FrozenSet[str] = frozenset()
    saved: bool = False
    snapshot_path: Optional[str] = None
    plan: Optional[InvalidationPlan] = field(default=None, repr=False)


def analyze_with_store(
    program: Program,
    prop: TypestateProperty,
    store: SummaryStore,
    engine: str = "swift",
    k: int = 5,
    theta: int = 1,
    budget: Optional[Budget] = None,
    tracked_sites: Optional[FrozenSet[str]] = None,
    domain: str = "simple",
    enable_caches: bool = True,
    indexed_summaries: bool = True,
    scheduler: Optional[str] = None,
    sink=None,
    save: bool = True,
    meta: Optional[dict] = None,
    kernel: str = "object",
    widening_delay: int = 2,
    descending_iters: int = 0,
    config: Optional[AnalysisConfig] = None,
    warm_cache: Optional[WarmCache] = None,
) -> IncrementalOutcome:
    """Run ``prop`` over ``program`` with a persistent summary store.

    Accepts the ``td`` and ``swift`` engines; a pure bottom-up run has
    no preload hook (its whole point is recomputing every summary), so
    ``engine="bu"`` raises ``ValueError``.  ``kernel`` selects the
    operator representation exactly as in ``run_typestate`` (a warm
    start disables the mask solver but keeps the compiled rows).

    ``config=`` replaces the keyword ladder with a full
    :class:`AnalysisConfig` (the analysis service parses one from
    JSON): its identity fields — including ``batched``, ``batch_size``,
    and the scheduler — flow into the run and the store fingerprint;
    explicit ``budget``/``sink`` keywords still override its runtime
    fields.  ``warm_cache=`` selects the decode cache — defaults to
    the process-level one; a long-lived host passes its own bounded
    :class:`WarmCache` so eviction policy and stats stay per-host.
    """
    if config is None:
        config = AnalysisConfig(
            engine=engine,
            domain=domain,
            k=k,
            theta=theta,
            tracked_sites=tracked_sites,
            enable_caches=enable_caches,
            indexed_summaries=indexed_summaries,
            scheduler=scheduler if scheduler is not None else "lifo",
            kernel=kernel,
            widening_delay=widening_delay,
            descending_iters=descending_iters,
        )
    if budget is not None and config.budget is not budget:
        config = config.replace(budget=budget)
    if sink is not None and config.sink is not sink:
        config = config.replace(sink=sink)
    if config.engine not in ("td", "swift"):
        raise ValueError(
            f"analyze_with_store supports td and swift, not {config.engine!r}"
        )
    domain_short = _SHORT_DOMAINS.get(config.domain)
    if domain_short is None:
        raise ValueError(
            f"analyze_with_store is type-state only, not {config.domain!r}"
        )
    cache = warm_cache if warm_cache is not None else _WARM_CACHE
    oracle = None
    facts = None
    if domain_short == "full":
        from repro.alias import points_to_oracle

        oracle = points_to_oracle(program)
        facts = alias_facts(program, oracle)
    fingerprints = ProgramFingerprints(program, facts)
    config_desc, config_fp = config_fingerprint(prop, config=config)
    _, bu_analysis, _ = make_analyses(
        program, prop, domain_short, config.tracked_sites, oracle
    )
    codec = Codec(domain_short, bu_analysis)

    load_started = time.perf_counter()
    snapshot, plan, warm = _load_warm(
        store, config_fp, fingerprints, codec, cache
    )
    store_load_seconds = time.perf_counter() - load_started

    session_out = analysis_session().run(
        program, config.replace(preload=warm), prop=prop, oracle=oracle
    )
    report = TypestateReport(
        prop.name,
        config.engine,
        session_out.findings,
        session_out.td_summaries,
        session_out.bu_summaries,
        session_out.timed_out,
        session_out.result,
    )
    metrics = report.result.metrics
    metrics.store_load_seconds += store_load_seconds
    outcome = IncrementalOutcome(
        report=report,
        config_fp=config_fp,
        cold=snapshot is None,
        store_hits=metrics.store_hits,
        store_misses=metrics.store_misses,
        store_invalidated=metrics.store_invalidated,
        valid=plan.valid if plan else frozenset(),
        invalidated=frozenset(plan.invalidated) if plan else frozenset(),
        added=plan.added if plan else frozenset(fingerprints.body),
        plan=plan,
    )
    if save and not report.timed_out:
        # A warm run over an unchanged program would rebuild exactly the
        # snapshot it loaded: every stored entry survived the diff, and
        # zero deterministic work means every table row came from
        # activating stored contexts (a genuinely new context would
        # have cost at least one propagation).  Skipping the re-encode
        # and the byte-identical rewrite keeps the file's identity
        # stable, so the process-level decode cache stays warm for the
        # next run — a changed snapshot is written as before and drops
        # the now-stale cache entry.
        unchanged = (
            snapshot is not None
            and plan is not None
            and not plan.invalidated
            and not plan.added
            and metrics.total_work == 0
        )
        if unchanged:
            outcome.snapshot_path = str(store.path_for(config_fp))
            # Backfill the frontier projection for snapshots written
            # before the projection existed (or whose projection was
            # swept), without disturbing the parent file's identity.
            if not store.frontier_path_for(config_fp).is_file():
                write_frontier(store, snapshot, program)
        else:
            new_snapshot = build_snapshot(
                config_desc,
                config_fp,
                fingerprints,
                report.result,
                codec,
                previous=snapshot,
                meta=meta,
            )
            cache.invalidate((str(store.root.resolve()), config_fp))
            outcome.snapshot_path = str(store.save(new_snapshot))
            write_frontier(store, new_snapshot, program)
        outcome.saved = True
    return outcome
