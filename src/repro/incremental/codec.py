"""Canonical JSON codecs for states, predicates, relations, summaries.

The store must re-serialize byte-identically after a load (its files
double as a regression oracle), which rules out pickle: pickling a
frozenset walks it in hash-seed-dependent order.  Instead every stored
object has an explicit, canonical JSON form — lists sorted by their
serialized text, sets emitted sorted — built here for both type-state
domains:

* ``simple`` — :class:`~repro.typestate.states.AbstractState`,
  ``have``/``notHave`` atoms, const/transformer relations (Figure 3);
* ``full`` — :class:`~repro.typestate.full.states.FullAbstractState`,
  path and may-alias atoms (including their oracle site sets), pattern
  masks, and the four-component transformer relations;
* ``interval-typestate`` — :class:`~repro.numeric.product.ProductValue`
  rows (simple states paired with interval environments; ``None``
  bounds serialize as JSON null) and
  :class:`~repro.numeric.product.ProductRelation` pairs of a simple
  relation with an interval transform.

Decoding rebuilds interned states and canonical relation forms, so a
decode → encode round trip is the identity on the serialized text.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.framework.bottomup import ProcedureSummary
from repro.framework.ignored import IgnoredStates
from repro.framework.predicates import TRUE, Atom, Conjunction
from repro.incremental.fingerprint import canonical_json
from repro.typestate.bu_analysis import (
    ConstRelation,
    HaveAtom,
    NotHaveAtom,
    TransformerRelation,
)
from repro.typestate.dfa import TSFunction
from repro.typestate.full.atoms import (
    InMust,
    InMustNot,
    MayAliasAtom,
    NotInMust,
    NotInMustNot,
    NotMayAliasAtom,
)
from repro.typestate.full.paths import ExactPath, HasField, PathPattern, Rooted
from repro.typestate.full.relations import (
    FullConstRelation,
    FullTransformerRelation,
)
from repro.typestate.full.states import FullAbstractState, intern_full_state
from repro.typestate.states import AbstractState, intern_state


def _sorted_enc(items: List) -> List:
    """Sort encoded items by their canonical JSON text (a total order)."""
    return sorted(items, key=canonical_json)


class Codec:
    """Encoder/decoder for one domain.

    ``analysis`` is the domain's bottom-up analysis; decoding ignored
    sets needs its ``pred_satisfied``/``pred_entails`` callbacks.
    """

    def __init__(self, domain: str, analysis) -> None:
        if domain not in ("simple", "full", "interval-typestate"):
            raise ValueError(f"unknown domain {domain!r}")
        self.domain = domain
        self.analysis = analysis
        # Stored encodings repeat heavily (the same abstract state
        # appears at many rows), so decoding memoizes on the encoded
        # tuple — bounded by the number of distinct states in the
        # snapshot, and the dominant cost of a warm-start decode.
        self._state_memo: dict = {}

    # -- states ---------------------------------------------------------------------
    @staticmethod
    def _encode_simple_state(sigma) -> list:
        return [sigma.site, sigma.state, sorted(sigma.must)]

    @staticmethod
    def _decode_simple_state(enc: list):
        site, state, must = enc
        return intern_state(AbstractState(site, state, frozenset(must)))

    @staticmethod
    def _encode_env(env) -> list:
        # Bindings are already var-sorted and TOP-free (canonical).
        return [[var, iv.lo, iv.hi] for var, iv in env.bindings]

    @staticmethod
    def _decode_env(enc: list):
        from repro.numeric.interval import Interval, IntervalEnv

        return IntervalEnv((var, Interval(lo, hi)) for var, lo, hi in enc)

    def encode_state(self, sigma) -> list:
        if self.domain == "interval-typestate":
            return [
                "prod",
                _sorted_enc(
                    [
                        [self._encode_simple_state(ts), self._encode_env(env)]
                        for ts, env in sigma.rows
                    ]
                ),
            ]
        if self.domain == "simple":
            return self._encode_simple_state(sigma)
        return [
            sigma.site,
            sigma.state,
            sorted(sigma.must),
            sorted(sigma.mustnot),
        ]

    def decode_state(self, enc: list):
        if self.domain == "interval-typestate":
            from repro.numeric.product import ProductValue

            _, rows = enc
            return ProductValue(
                (self._decode_simple_state(ts), self._decode_env(env))
                for ts, env in rows
            )
        if self.domain == "simple":
            site, state, must = enc
            key = (site, state, tuple(must))
            hit = self._state_memo.get(key)
            if hit is None:
                hit = intern_state(AbstractState(site, state, frozenset(must)))
                self._state_memo[key] = hit
            return hit
        site, state, must, mustnot = enc
        key = (site, state, tuple(must), tuple(mustnot))
        hit = self._state_memo.get(key)
        if hit is None:
            hit = intern_full_state(
                FullAbstractState(
                    site, state, frozenset(must), frozenset(mustnot)
                )
            )
            self._state_memo[key] = hit
        return hit

    def state_key(self, sigma) -> str:
        """Canonical string key for dict/sort use."""
        return canonical_json(self.encode_state(sigma))

    # -- atoms and predicates ----------------------------------------------------------
    def encode_atom(self, atom: Atom) -> list:
        if isinstance(atom, HaveAtom):
            return ["have", atom.var]
        if isinstance(atom, NotHaveAtom):
            return ["nothave", atom.var]
        if isinstance(atom, InMust):
            return ["inmust", atom.path]
        if isinstance(atom, NotInMust):
            return ["notinmust", atom.path]
        if isinstance(atom, InMustNot):
            return ["inmustnot", atom.path]
        if isinstance(atom, NotInMustNot):
            return ["notinmustnot", atom.path]
        if isinstance(atom, MayAliasAtom):
            return ["mayalias", atom.var, sorted(atom.sites)]
        if isinstance(atom, NotMayAliasAtom):
            return ["notmayalias", atom.var, sorted(atom.sites)]
        raise TypeError(f"cannot encode atom {atom!r}")

    def decode_atom(self, enc: list) -> Atom:
        kind = enc[0]
        if kind == "have":
            return HaveAtom(enc[1])
        if kind == "nothave":
            return NotHaveAtom(enc[1])
        if kind == "inmust":
            return InMust(enc[1])
        if kind == "notinmust":
            return NotInMust(enc[1])
        if kind == "inmustnot":
            return InMustNot(enc[1])
        if kind == "notinmustnot":
            return NotInMustNot(enc[1])
        if kind == "mayalias":
            return MayAliasAtom(enc[1], frozenset(enc[2]))
        if kind == "notmayalias":
            return NotMayAliasAtom(enc[1], frozenset(enc[2]))
        raise ValueError(f"unknown atom kind {kind!r}")

    def encode_pred(self, pred: Conjunction) -> list:
        if pred.is_false:
            raise ValueError("FALSE predicates are never stored")
        return _sorted_enc([self.encode_atom(a) for a in pred.atoms])

    def decode_pred(self, enc: list) -> Conjunction:
        if not enc:
            return TRUE
        pred = Conjunction.of(self.decode_atom(a) for a in enc)
        if pred.is_false:  # pragma: no cover - stored preds are satisfiable
            raise ValueError("stored predicate decoded to FALSE")
        return pred

    # -- type-state functions and patterns ----------------------------------------------
    @staticmethod
    def encode_tsfunction(fn: TSFunction) -> list:
        return [[t, u] for t, u in fn.table]

    @staticmethod
    def decode_tsfunction(enc: list) -> TSFunction:
        return TSFunction(tuple((t, u) for t, u in enc))

    @staticmethod
    def encode_pattern(pattern: PathPattern) -> list:
        if isinstance(pattern, ExactPath):
            return ["exact", pattern.path]
        if isinstance(pattern, Rooted):
            return ["rooted", pattern.var]
        if isinstance(pattern, HasField):
            return ["field", pattern.fieldname]
        raise TypeError(f"cannot encode pattern {pattern!r}")

    @staticmethod
    def decode_pattern(enc: list) -> PathPattern:
        kind, arg = enc
        if kind == "exact":
            return ExactPath(arg)
        if kind == "rooted":
            return Rooted(arg)
        if kind == "field":
            return HasField(arg)
        raise ValueError(f"unknown pattern kind {kind!r}")

    def _encode_patterns(self, patterns: FrozenSet[PathPattern]) -> list:
        return _sorted_enc([self.encode_pattern(p) for p in patterns])

    # -- interval transforms (product domain) -------------------------------------------
    @staticmethod
    def _encode_action(action: tuple) -> list:
        if action[0] == "top":
            return ["top"]
        if action[0] == "const":
            return ["const", action[1].lo, action[1].hi]
        return ["shift", action[1], action[2].lo, action[2].hi]

    @staticmethod
    def _decode_action(enc: list) -> tuple:
        from repro.numeric.interval import Interval

        kind = enc[0]
        if kind == "top":
            return ("top",)
        if kind == "const":
            return ("const", Interval(enc[1], enc[2]))
        if kind == "shift":
            return ("shift", enc[1], Interval(enc[2], enc[3]))
        raise ValueError(f"unknown transform action kind {kind!r}")

    def _encode_transform(self, t) -> list:
        # Actions are already var-sorted and identity-free (canonical).
        return [[var, self._encode_action(a)] for var, a in t.actions]

    def _decode_transform(self, enc: list):
        from repro.numeric.bu_analysis import IntervalTransform

        return IntervalTransform(
            (var, self._decode_action(a)) for var, a in enc
        )

    def _encode_simple_relation(self, r) -> list:
        if isinstance(r, ConstRelation):
            return [
                "const",
                self._encode_simple_state(r.output),
                self.encode_pred(r.pred),
            ]
        return [
            "trans",
            self.encode_tsfunction(r.iota),
            sorted(r.removed),
            sorted(r.added),
            self.encode_pred(r.pred),
        ]

    def _decode_simple_relation(self, enc: list):
        if enc[0] == "const":
            return ConstRelation(
                self._decode_simple_state(enc[1]), self.decode_pred(enc[2])
            )
        _, iota, removed, added, pred = enc
        return TransformerRelation(
            self.decode_tsfunction(iota),
            frozenset(removed),
            frozenset(added),
            self.decode_pred(pred),
        )

    # -- relations ----------------------------------------------------------------------
    def encode_relation(self, r) -> list:
        if self.domain == "interval-typestate":
            return [
                "prod",
                self._encode_simple_relation(r.ts),
                self._encode_transform(r.num),
            ]
        if isinstance(r, (ConstRelation, FullConstRelation)):
            return ["const", self.encode_state(r.output), self.encode_pred(r.pred)]
        if isinstance(r, TransformerRelation):
            return [
                "trans",
                self.encode_tsfunction(r.iota),
                sorted(r.removed),
                sorted(r.added),
                self.encode_pred(r.pred),
            ]
        if isinstance(r, FullTransformerRelation):
            return [
                "trans",
                self.encode_tsfunction(r.iota),
                self._encode_patterns(r.rem_must),
                sorted(r.add_must),
                self._encode_patterns(r.rem_mustnot),
                sorted(r.add_mustnot),
                self.encode_pred(r.pred),
            ]
        raise TypeError(f"cannot encode relation {r!r}")

    def decode_relation(self, enc: list):
        kind = enc[0]
        if self.domain == "interval-typestate":
            from repro.numeric.product import ProductRelation

            if kind != "prod":
                raise ValueError(f"unknown relation kind {kind!r}")
            return ProductRelation(
                self._decode_simple_relation(enc[1]),
                self._decode_transform(enc[2]),
            )
        if kind == "const":
            output = self.decode_state(enc[1])
            pred = self.decode_pred(enc[2])
            cls = ConstRelation if self.domain == "simple" else FullConstRelation
            return cls(output, pred)
        if kind != "trans":
            raise ValueError(f"unknown relation kind {kind!r}")
        if self.domain == "simple":
            _, iota, removed, added, pred = enc
            return TransformerRelation(
                self.decode_tsfunction(iota),
                frozenset(removed),
                frozenset(added),
                self.decode_pred(pred),
            )
        _, iota, rem_must, add_must, rem_mustnot, add_mustnot, pred = enc
        return FullTransformerRelation(
            self.decode_tsfunction(iota),
            frozenset(self.decode_pattern(p) for p in rem_must),
            frozenset(add_must),
            frozenset(self.decode_pattern(p) for p in rem_mustnot),
            frozenset(add_mustnot),
            self.decode_pred(pred),
        )

    # -- summaries ----------------------------------------------------------------------
    def encode_summary(self, summary: ProcedureSummary) -> dict:
        return {
            "relations": _sorted_enc(
                [self.encode_relation(r) for r in summary.relations]
            ),
            "ignored": _sorted_enc(
                [self.encode_pred(p) for p in summary.ignored.predicates]
            ),
        }

    def decode_summary(self, enc: dict) -> ProcedureSummary:
        relations = frozenset(self.decode_relation(r) for r in enc["relations"])
        ignored = IgnoredStates(
            self.analysis.pred_satisfied,
            self.analysis.pred_entails,
            (self.decode_pred(p) for p in enc["ignored"]),
        )
        return ProcedureSummary(relations, ignored)
