"""SWIFT: hybrid top-down and bottom-up interprocedural analysis.

Reproduction of Zhang, Mangal, Naik, Yang — PLDI 2014.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.ir` — the command IR;
* :mod:`repro.frontend` — the MiniOO surface language;
* :mod:`repro.framework` — the SWIFT engines (the paper's contribution);
* :mod:`repro.typestate` — the type-state analysis instantiations;
* :mod:`repro.killgen` — kill/gen analyses and synthesis;
* :mod:`repro.alias`, :mod:`repro.callgraph` — pointer/call-graph
  substrates;
* :mod:`repro.bench`, :mod:`repro.experiments` — the evaluation.
"""

__version__ = "1.0.0"

from repro.framework import (
    BottomUpEngine,
    Budget,
    SwiftEngine,
    TopDownEngine,
)
from repro.ir import Program
from repro.typestate import run_typestate

__all__ = [
    "BottomUpEngine",
    "Budget",
    "Program",
    "SwiftEngine",
    "TopDownEngine",
    "__version__",
    "run_typestate",
]
