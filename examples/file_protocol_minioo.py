"""Verify a file protocol in MiniOO source code.

Shows the whole pipeline the paper's system implies: an object-oriented
surface program with inheritance and virtual dispatch is compiled to
the command IR (parameters lowered to argument registers, dispatch
resolved by 0-CFA into non-deterministic choice), then the full
type-state analysis — must/must-not sets, access paths, may-alias
reasoning — checks the File protocol, with SWIFT combining the
top-down and bottom-up engines.

Run:  python examples/file_protocol_minioo.py
"""

from repro.frontend import compile_minioo
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY

GOOD = """
class Writer {
  field log;
  method flush(f) {
    f.#open();
    f.#write();
    f.#close();
  }
}
class SafeWriter extends Writer {
  method flush(f) {
    f.#open();
    if (*) { f.#write(); } else { f.#read(); }
    f.#close();
  }
}
main {
  w = new Writer();
  s = new SafeWriter();
  file = new Writer();          // stands in for the tracked resource
  if (*) { h = w; } else { h = s; }
  while (*) {
    h.flush(file);
  }
}
"""

BAD = """
class Closer {
  method shutdown(f) {
    f.#close();
  }
}
main {
  c = new Closer();
  file = new Closer();
  file.#open();
  c.shutdown(file);
  c.shutdown(file);             // double close!
}
"""


def verify(label, source):
    program = compile_minioo(source)
    report = run_typestate(
        program, FILE_PROPERTY, engine="swift", domain="full", k=2, theta=2
    )
    verdict = "OK" if not report.errors else "PROTOCOL VIOLATION"
    print(f"[{label}] {verdict}")
    for point, site in sorted(report.errors, key=str):
        print(f"    object from {site} may be in the error state at {point}")
    print(
        f"    ({len(program)} procedures, "
        f"{report.td_summaries} top-down summaries, "
        f"{report.bu_summaries} bottom-up summaries)"
    )


def main():
    verify("good", GOOD)
    verify("bad", BAD)


if __name__ == "__main__":
    main()
