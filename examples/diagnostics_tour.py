"""Inspect what SWIFT did: summaries, coverage, fallbacks.

Runs SWIFT on a suite benchmark and uses the
:class:`repro.framework.explain.SummaryExplorer` diagnostics to answer
the tuning questions: which procedures are hottest, how well do their
bottom-up summaries absorb the incoming-state traffic, and which states
still fall back to the top-down analysis.

Run:  python examples/diagnostics_tour.py [benchmark-name]
"""

import sys

from repro.bench import benchmark_names, load_benchmark
from repro.framework.explain import SummaryExplorer
from repro.framework.swift import SwiftEngine
from repro.typestate.client import make_analyses
from repro.typestate.properties import FILE_PROPERTY


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "toba-s"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}")
    benchmark = load_benchmark(name)
    td_analysis, bu_analysis, init = make_analyses(
        benchmark.program, FILE_PROPERTY, "full"
    )
    engine = SwiftEngine(benchmark.program, td_analysis, bu_analysis, k=5, theta=1)
    result = engine.run([init])
    explorer = SummaryExplorer(result)

    print(explorer.report(limit=8))
    print()
    hottest = explorer.hottest_procedures(1)[0][0]
    print(explorer.explain(hottest))


if __name__ == "__main__":
    main()
