"""Asynchronous SWIFT — the Section 7 parallelization sketch.

Triggers submit the bottom-up analysis to a background thread while the
top-down analysis keeps tabulating; finished summaries are installed on
the fly.  The example races the sequential and concurrent engines and
checks the verdicts coincide (under CPython's GIL the benefit is
architectural, not wall-clock — see the module docstring of
repro.framework.concurrent).

Run:  python examples/concurrent_swift.py
"""

import time

from repro.bench import load_benchmark
from repro.framework.concurrent import ConcurrentSwiftEngine
from repro.framework.swift import SwiftEngine
from repro.typestate.client import make_analyses
from repro.typestate.properties import FILE_PROPERTY


def main() -> None:
    benchmark = load_benchmark("hedc")
    td_analysis, bu_analysis, init = make_analyses(
        benchmark.program, FILE_PROPERTY, "full"
    )

    started = time.perf_counter()
    sequential = SwiftEngine(
        benchmark.program, td_analysis, bu_analysis, k=5, theta=1
    ).run([init])
    seq_time = time.perf_counter() - started

    started = time.perf_counter()
    concurrent = ConcurrentSwiftEngine(
        benchmark.program, td_analysis, bu_analysis, k=5, theta=1, max_workers=2
    ).run([init])
    conc_time = time.perf_counter() - started

    print(f"sequential SWIFT : {seq_time:.2f}s, "
          f"{sequential.total_summaries()} td-summaries, "
          f"{len(sequential.bu)} procedures summarized")
    print(f"concurrent SWIFT : {conc_time:.2f}s, "
          f"{concurrent.total_summaries()} td-summaries, "
          f"{len(concurrent.bu)} procedures summarized")
    same = concurrent.exit_states() == sequential.exit_states()
    print(f"identical final abstract states: {same}")
    assert same


if __name__ == "__main__":
    main()
