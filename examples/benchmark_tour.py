"""Tour of one suite benchmark: TD vs BU vs SWIFT head to head.

Loads a mid-size benchmark from the Table 1 suite and races the three
engines on the full type-state analysis, printing a one-benchmark
version of the paper's Table 2 (times, summary counts, drops).

Run:  python examples/benchmark_tour.py [benchmark-name]
"""

import sys
import time

from repro.bench import benchmark_names, load_benchmark
from repro.callgraph import compute_stats
from repro.framework.metrics import Budget
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY


def race(name: str) -> None:
    benchmark = load_benchmark(name)
    stats = compute_stats(benchmark)
    print(
        f"benchmark {name}: {stats.methods_total} methods "
        f"({stats.methods_app} app), {stats.loc_total} LOC"
    )
    rows = []
    for engine in ("td", "bu", "swift"):
        budget = Budget(max_work=400_000)
        started = time.perf_counter()
        report = run_typestate(
            benchmark.program,
            FILE_PROPERTY,
            engine=engine,
            domain="full",
            k=5,
            theta=1,
            budget=budget,
        )
        elapsed = time.perf_counter() - started
        label = "timeout" if report.timed_out else f"{elapsed:.2f}s"
        rows.append((engine, label, report.td_summaries, report.bu_summaries))
    print(f"{'engine':8} {'time':>9} {'#td-summaries':>14} {'#bu-summaries':>14}")
    for engine, label, td_sum, bu_sum in rows:
        print(f"{engine:8} {label:>9} {td_sum:14d} {bu_sum:14d}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "hedc"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; choose from {benchmark_names()}")
    race(name)


if __name__ == "__main__":
    main()
