"""Plug a custom analysis into SWIFT via the kill/gen recipe.

Section 5.2 of the paper: for kill/gen analyses, the bottom-up
counterpart (and hence a SWIFT instance) can be synthesized
mechanically.  This example defines a custom "files may be open"
analysis in a dozen lines, synthesizes the matched analysis pair, and
runs all three engines on a program, checking they agree.

Run:  python examples/custom_killgen_analysis.py
"""

from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.ir.builder import ProgramBuilder
from repro.ir.commands import Invoke
from repro.killgen import LAMBDA, KillGenSpec, synthesize


class MayBeOpenSpec(KillGenSpec):
    """Facts are variables on which ``open`` was called without a
    ``close`` on the same variable since — a classic gen/kill pattern."""

    name = "may-be-open"

    def kill(self, cmd):
        if isinstance(cmd, Invoke) and cmd.method == "close":
            return frozenset({cmd.receiver})
        return frozenset()

    def gen(self, cmd):
        if isinstance(cmd, Invoke) and cmd.method == "open":
            return frozenset({cmd.receiver})
        return frozenset()


def build_program():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("f", "h1").invoke("f", "open")
        p.call("maybe_close")
        p.new("g", "h2").invoke("g", "open")
        p.invoke("g", "close")
    with b.proc("maybe_close") as p:
        with p.choose() as c:
            with c.branch() as t:
                t.invoke("f", "close")
            with c.branch() as e:
                e.skip()
    return b.build()


def main():
    program = build_program()
    td_analysis, bu_analysis = synthesize(MayBeOpenSpec())

    td_result = TopDownEngine(program, td_analysis).run([LAMBDA])
    swift_result = SwiftEngine(
        program, td_analysis, bu_analysis, k=1, theta=4
    ).run([LAMBDA])

    open_at_exit = sorted(
        fact for fact in td_result.exit_states() if fact is not LAMBDA
    )
    print("Variables that may still be open at program exit:", open_at_exit)
    assert swift_result.exit_states() == td_result.exit_states()
    print("SWIFT and TD agree on every fact.")
    print(
        f"TD summaries: {td_result.total_summaries()}, "
        f"SWIFT summaries: {swift_result.total_summaries()}, "
        f"bottom-up summaries: {swift_result.total_bu_relations()}"
    )


if __name__ == "__main__":
    main()
