"""Quickstart: verify a file-handling protocol with SWIFT.

Builds the paper's running example (Figure 1) with the program builder,
runs the hybrid analysis, and shows what the engine computed: the
verification verdict, the top-down summaries it needed, and the
bottom-up summaries it generalized.

Run:  python examples/quickstart.py
"""

from repro.ir.builder import ProgramBuilder
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY


def build_program():
    """Three files opened and closed through a shared helper (Fig. 1)."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v1", "h1").assign("f", "v1").call("foo")
        p.new("v2", "h2").assign("f", "v2").call("foo")
        p.new("v3", "h3").assign("f", "v3").call("foo")
    with b.proc("foo") as p:
        p.invoke("f", "open").invoke("f", "close")
    return b.build()


def main():
    program = build_program()
    print("Program under analysis:")
    from repro.ir.printer import format_program

    print(format_program(program))

    # SWIFT with the paper's overview thresholds: trigger the bottom-up
    # analysis after k=2 incoming states, keep theta=2 cases.
    report = run_typestate(
        program, FILE_PROPERTY, engine="swift", domain="full", k=2, theta=2
    )
    print(f"Property:            {report.property_name}")
    print(f"Protocol violations: {len(report.errors)}")
    print(f"Top-down summaries:  {report.td_summaries}")
    print(f"Bottom-up summaries: {report.bu_summaries}")
    print()

    swift_result = report.result
    print("Bottom-up summaries computed for foo (the paper's B1/B2 &co.):")
    for relation in swift_result.bu["foo"].relations:
        print(f"  {relation}")
    print()

    # Compare against the conventional top-down analysis: identical
    # verdicts, fewer summaries.
    td_report = run_typestate(program, FILE_PROPERTY, engine="td", domain="full")
    print(f"TD summaries (conventional): {td_report.td_summaries}")
    print(f"Same verdict as TD:          {td_report.error_sites == report.error_sites}")


if __name__ == "__main__":
    main()
