"""Engine-level tests over the full type-state domain.

The same equivalence and coincidence guarantees checked for the simple
domain must hold for the evaluation's four-component domain, with the
may-alias oracle in play.
"""

import pytest

from repro.alias import AndersenPointsTo, points_to_oracle
from repro.framework.bottomup import BottomUpEngine
from repro.framework.denotational import DenotationalInterpreter
from repro.framework.pruning import NoPruner
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.typestate.client import run_typestate
from repro.typestate.dfa import ERROR
from repro.typestate.full import FullTypestateBU, FullTypestateTD, full_bootstrap_state
from repro.typestate.properties import FILE_PROPERTY

from tests.helpers import all_small_programs, figure1_program, section24_program


def _setup(program):
    oracle = points_to_oracle(program)
    td = FullTypestateTD(FILE_PROPERTY, oracle)
    bu = FullTypestateBU(FILE_PROPERTY, oracle)
    return td, bu, full_bootstrap_state(FILE_PROPERTY)


def test_andersen_on_figure1():
    program = figure1_program()
    result = AndersenPointsTo(program).solve()
    assert result.of_var("v1") == frozenset({"h1"})
    assert result.of_var("f") == frozenset({"h1", "h2", "h3"})
    assert result.may_alias_vars("f", "v2")
    assert not result.may_alias_vars("v1", "v2")


def test_figure1_full_td_reports_no_errors():
    """With must-not sets and may-alias reasoning, the paper's Figure 1
    program verifies cleanly (every open is matched by a close on a
    definitely-aliased receiver)."""
    program = figure1_program()
    report = run_typestate(program, FILE_PROPERTY, engine="td", domain="full")
    assert report.errors == frozenset()


def test_figure1_full_swift_matches_td_reports():
    program = figure1_program()
    td_report = run_typestate(program, FILE_PROPERTY, engine="td", domain="full")
    swift_report = run_typestate(
        program, FILE_PROPERTY, engine="swift", domain="full", k=2, theta=2
    )
    assert swift_report.errors == td_report.errors


@pytest.mark.parametrize("program", all_small_programs())
@pytest.mark.parametrize("k,theta", [(1, 1), (2, 1), (2, 3)])
def test_full_swift_equivalent_to_td(program, k, theta):
    td_analysis, bu_analysis, init = _setup(program)
    td_result = TopDownEngine(program, td_analysis).run([init])
    swift_result = SwiftEngine(
        program, td_analysis, bu_analysis, k=k, theta=theta
    ).run([init])
    assert swift_result.exit_states() == td_result.exit_states()
    for point in swift_result.cfgs["main"].points:
        assert swift_result.states_at(point) == td_result.states_at(point)


@pytest.mark.parametrize("program", all_small_programs())
def test_full_bu_coincidence_without_pruning(program):
    td_analysis, bu_analysis, init = _setup(program)
    result = BottomUpEngine(program, bu_analysis, pruner=NoPruner(bu_analysis)).analyze()
    oracle = DenotationalInterpreter(program, td_analysis)
    initial = frozenset([init])
    for proc in program.reachable():
        summary = result.summary(proc)
        expected = oracle.eval_proc(proc, initial)
        actual = set()
        for r in summary.relations:
            actual.update(bu_analysis.apply(r, init))
        assert frozenset(actual) == expected, f"mismatch for {proc}"


def test_full_section24_scenario_from_paper():
    """Section 2.4's two-state scenario: pruning B1 away must never make
    SWIFT report different results than TD for state A2.

    Error *sites* are compared rather than exact program points: when
    SWIFT applies a bottom-up summary it never enters the callee body,
    so an error that TD attributes to a point inside the callee shows up
    at the call's return point instead — same erroneous objects.
    """
    program = section24_program()
    for theta in (1, 2, 4):
        td_report = run_typestate(program, FILE_PROPERTY, engine="td", domain="full")
        swift_report = run_typestate(
            program, FILE_PROPERTY, engine="swift", domain="full", k=1, theta=theta
        )
        assert swift_report.error_sites == td_report.error_sites


def test_double_open_detected_in_full_domain():
    from repro.ir.builder import ProgramBuilder

    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v", "h1").assign("f", "v")
        p.invoke("f", "open").invoke("f", "open")
    program = b.build()
    report = run_typestate(program, FILE_PROPERTY, engine="td", domain="full")
    assert report.error_sites == frozenset({"h1"})


def test_full_bu_engine_runs_on_figure1():
    program = figure1_program()
    report = run_typestate(program, FILE_PROPERTY, engine="bu", domain="full")
    assert not report.timed_out
    assert report.bu_summaries > 0
    assert report.errors == frozenset()
