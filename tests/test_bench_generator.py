"""Unit tests for the benchmark generator and suite."""

import pytest

from repro.bench import (
    SUITE_CONFIGS,
    BenchmarkConfig,
    benchmark_names,
    generate,
    load_benchmark,
    load_suite,
)
from repro.ir.validate import validate_program


def _tiny_config(**overrides):
    base = dict(
        name="tiny",
        seed=7,
        n_entries=2,
        workers_per_entry=2,
        n_resources=3,
        n_hubs=2,
        wrapper_depth=2,
        n_branchy=1,
        branch_len=2,
        n_padding=4,
        alias_styles=3,
    )
    base.update(overrides)
    return BenchmarkConfig(**base)


def test_generation_is_deterministic():
    a = generate(_tiny_config())
    b = generate(_tiny_config())
    assert a.program.procedures == b.program.procedures
    assert a.class_of == b.class_of


def test_seed_changes_program():
    a = generate(_tiny_config())
    b = generate(_tiny_config(seed=8))
    assert a.program.procedures != b.program.procedures


def test_generated_program_is_valid_and_reachable():
    benchmark = generate(_tiny_config())
    validate_program(benchmark.program)
    reachable = benchmark.program.reachable()
    # Every generated procedure is 0-CFA-reachable from main.
    assert reachable == frozenset(benchmark.program.names())


def test_app_lib_partition():
    benchmark = generate(_tiny_config())
    assert not (benchmark.app_procs & benchmark.lib_procs)
    assert benchmark.app_procs | benchmark.lib_procs == frozenset(
        benchmark.program.names()
    )
    assert "main" in benchmark.app_procs
    assert any(p.startswith("lib_hub") for p in benchmark.lib_procs)


def test_resource_sites_are_allocated():
    benchmark = generate(_tiny_config())
    sites = benchmark.program.allocation_sites()
    assert benchmark.resource_sites() <= sites


def test_config_validation():
    with pytest.raises(ValueError):
        _tiny_config(alias_styles=0)
    with pytest.raises(ValueError):
        _tiny_config(alias_styles=99)
    with pytest.raises(ValueError):
        _tiny_config(n_resources=0)


def test_suite_has_twelve_paper_names():
    names = benchmark_names()
    assert len(names) == 12
    assert names[0] == "jpat-p" and names[-1] == "sablecc-j"
    assert "avrora" in names and "antlr" in names


def test_suite_caching():
    assert load_benchmark("jpat-p") is load_benchmark("jpat-p")
    with pytest.raises(KeyError):
        load_benchmark("nope")


def test_suite_scales_increase():
    suite = {b.name: b for b in load_suite()}
    small = len(suite["jpat-p"].program)
    large = len(suite["avrora"].program)
    assert large > 3 * small
