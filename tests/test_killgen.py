"""Tests for the kill/gen analyses and the Section 5.2 synthesis recipe."""

import itertools

import pytest

from repro.framework.conditions import check_c1, check_c2, check_c3
from repro.framework.denotational import DenotationalInterpreter
from repro.framework.swift import SwiftEngine
from repro.framework.synthesis import SynthesizedTopDown
from repro.framework.topdown import TopDownEngine
from repro.ir.commands import Assign, Invoke, New, Skip
from repro.killgen import (
    LAMBDA,
    AllocatedSitesSpec,
    InitializedVarsSpec,
    KillGenBU,
    KillGenTD,
    LambdaConst,
    ReachingDefsSpec,
    Survive,
    synthesize,
)

from tests.helpers import all_small_programs, figure1_program


@pytest.fixture(scope="module")
def rd_pair():
    return synthesize(ReachingDefsSpec(figure1_program()))


def _facts(spec_program=None):
    program = spec_program or figure1_program()
    spec = ReachingDefsSpec(program)
    facts = set()
    for prim in program.primitives():
        facts |= spec.gen(prim)
    return [LAMBDA] + sorted(facts)


def _relations(facts):
    rels = [Survive(frozenset())]
    concrete = [f for f in facts if f is not LAMBDA]
    rels.append(Survive(frozenset(concrete[:1])))
    rels.append(Survive(frozenset(concrete[:3])))
    rels.extend(LambdaConst(f) for f in concrete[:3])
    return rels


def test_reaching_defs_spec_kill_and_gen():
    program = figure1_program()
    spec = ReachingDefsSpec(program)
    cmd = Assign("f", "v1")
    gen = spec.gen(cmd)
    assert gen == frozenset({("f", "f = v1")})
    # Any definition of f kills every definition of f.
    assert gen <= spec.kill(Assign("f", "v3"))
    assert spec.kill(Invoke("f", "open")) == frozenset()


def test_initialized_vars_and_allocated_sites_specs():
    init_spec = InitializedVarsSpec()
    assert init_spec.gen(New("v", "h")) == frozenset({"v"})
    assert init_spec.kill(New("v", "h")) == frozenset()
    alloc_spec = AllocatedSitesSpec()
    assert alloc_spec.gen(New("v", "h")) == frozenset({"h"})
    assert alloc_spec.gen(Assign("v", "w")) == frozenset()


def test_td_transfer_shapes(rd_pair):
    td, _ = rd_pair
    out = td.transfer(Assign("f", "v1"), LAMBDA)
    assert LAMBDA in out and ("f", "f = v1") in out
    # A killed fact disappears; an unrelated fact survives.
    assert td.transfer(Assign("f", "v1"), ("f", "f = v2")) == frozenset()
    assert td.transfer(Assign("f", "v1"), ("v1", "v1 = new h1")) == frozenset(
        {("v1", "v1 = new h1")}
    )


def test_killgen_condition_c1(rd_pair):
    td, bu = rd_pair
    program = figure1_program()
    facts = _facts(program)
    prims = list(dict.fromkeys(program.primitives()))
    problems = check_c1(td, bu, prims, _relations(facts), facts)
    assert not problems, problems[:5]


def test_killgen_condition_c2(rd_pair):
    _, bu = rd_pair
    facts = _facts()
    rels = _relations(facts)
    problems = check_c2(bu, itertools.product(rels, rels), facts)
    assert not problems, problems[:5]


def test_killgen_condition_c3(rd_pair):
    _, bu = rd_pair
    facts = _facts()
    rels = _relations(facts)
    preds = [bu.domain_predicate(r) for r in rels]
    problems = check_c3(bu, rels, preds, facts)
    assert not problems, problems[:5]


def test_killgen_section51_synthesis_matches(rd_pair):
    """The generic Section 5.1 recipe applied to the kill/gen bottom-up
    analysis reproduces the kill/gen top-down analysis."""
    td, bu = rd_pair
    synthesized = SynthesizedTopDown(bu)
    program = figure1_program()
    for cmd in dict.fromkeys(program.primitives()):
        for sigma in _facts(program):
            assert synthesized.transfer(cmd, sigma) == td.transfer(cmd, sigma)


@pytest.mark.parametrize("program", all_small_programs())
def test_killgen_swift_equals_td(program):
    td, bu = synthesize(ReachingDefsSpec(program))
    td_result = TopDownEngine(program, td).run([LAMBDA])
    swift_result = SwiftEngine(program, td, bu, k=1, theta=2).run([LAMBDA])
    assert swift_result.exit_states() == td_result.exit_states()
    for point in swift_result.cfgs["main"].points:
        assert swift_result.states_at(point) == td_result.states_at(point)


@pytest.mark.parametrize("program", all_small_programs())
def test_killgen_td_matches_denotational(program):
    td, _ = synthesize(InitializedVarsSpec())
    oracle = DenotationalInterpreter(program, td).run([LAMBDA])
    result = TopDownEngine(program, td).run([LAMBDA])
    assert result.exit_states() == oracle


def test_reaching_defs_end_to_end():
    program = figure1_program()
    td, _ = synthesize(ReachingDefsSpec(program))
    result = TopDownEngine(program, td).run([LAMBDA])
    final = result.exit_states()
    # The last definition of f reaches main's exit; all three v-defs do.
    assert ("f", "f = v3") in final
    assert ("v1", "v1 = new h1") in final
    # f = v1 is killed by the later f-definitions on every path.
    assert ("f", "f = v1") not in final


def test_lambda_singleton_identity():
    assert LAMBDA is type(LAMBDA)()
    assert repr(LAMBDA) == "Λ"
