"""Unit tests for the command AST (repro.ir.commands)."""

import pytest

from repro.ir.commands import (
    Assign,
    Call,
    Choice,
    FieldLoad,
    FieldStore,
    Invoke,
    New,
    Seq,
    Skip,
    Star,
    choice,
    seq,
    star,
)


def test_prim_str_forms():
    assert str(New("v", "h1")) == "v = new h1"
    assert str(Assign("v", "w")) == "v = w"
    assert str(Invoke("v", "open")) == "v.open()"
    assert str(FieldLoad("v", "w", "f")) == "v = w.f"
    assert str(FieldStore("v", "f", "w")) == "v.f = w"
    assert str(Skip()) == "skip"


def test_prims_are_hashable_and_eq():
    assert New("v", "h") == New("v", "h")
    assert hash(Assign("a", "b")) == hash(Assign("a", "b"))
    assert Invoke("v", "open") != Invoke("v", "close")
    assert len({Skip(), Skip()}) == 1


def test_seq_flattens_nested():
    cmd = seq(Skip(), seq(Assign("a", "b"), Skip()), New("v", "h"))
    assert isinstance(cmd, Seq)
    assert len(cmd.parts) == 4
    assert all(not isinstance(p, Seq) for p in cmd.parts)


def test_seq_degenerate_cases():
    assert seq() == Skip()
    single = Assign("a", "b")
    assert seq(single) is single


def test_choice_flattens_nested():
    cmd = choice(Skip(), choice(Assign("a", "b"), Skip()))
    assert isinstance(cmd, Choice)
    assert len(cmd.alternatives) == 3


def test_choice_rejects_empty():
    with pytest.raises(ValueError):
        choice()


def test_choice_single_passthrough():
    single = Skip()
    assert choice(single) is single


def test_seq_constructor_rejects_short():
    with pytest.raises(ValueError):
        Seq((Skip(),))
    with pytest.raises(ValueError):
        Choice((Skip(),))


def test_primitives_iteration_order():
    cmd = seq(Assign("a", "b"), star(Invoke("a", "open")), choice(Skip(), New("c", "h")))
    prims = list(cmd.primitives())
    assert prims[0] == Assign("a", "b")
    assert Invoke("a", "open") in prims
    assert New("c", "h") in prims
    assert len(prims) == 4


def test_calls_iteration():
    cmd = seq(Call("f"), star(Call("g")), choice(Call("h1"), Skip()))
    assert {c.proc for c in cmd.calls()} == {"f", "g", "h1"}


def test_variables():
    cmd = seq(Assign("a", "b"), FieldStore("c", "f", "d"), Call("p"))
    assert cmd.variables() == frozenset({"a", "b", "c", "d"})


def test_star_str():
    assert str(star(Skip())) == "(skip)*"


def test_nested_structure_str():
    cmd = seq(Assign("a", "b"), choice(Skip(), Invoke("a", "m")))
    text = str(cmd)
    assert "a = b" in text and "a.m()" in text and "+" in text
