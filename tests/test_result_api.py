"""Coverage for the result-object APIs (TopDownResult / SwiftResult)."""

from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import figure1_program


def _results():
    program = figure1_program()
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    td = TopDownEngine(program, td_analysis).run(initial)
    swift = SwiftEngine(program, td_analysis, bu_analysis, k=2, theta=2).run(initial)
    return td, swift


def test_pairs_at_shape():
    td, _ = _results()
    exit_point = td.cfgs.exit("foo")
    pairs = td.pairs_at(exit_point)
    assert pairs and all(len(p) == 2 for p in pairs)
    assert td.summaries("foo") == pairs


def test_states_at_unknown_point_is_empty():
    from repro.ir.cfg import ProgramPoint

    td, _ = _results()
    assert td.states_at(ProgramPoint("main", 9999)) == frozenset()


def test_exit_states_defaults_to_main():
    td, _ = _results()
    assert td.exit_states() == td.states_at(td.cfgs.exit("main"))
    assert td.exit_states("foo") == td.states_at(td.cfgs.exit("foo"))


def test_incoming_states_and_summary_count_consistency():
    td, _ = _results()
    assert td.summary_count("foo") == len(td.summaries("foo"))
    assert len(td.incoming_states("foo")) >= 1
    # Every summary's input component was an observed incoming state.
    incoming = td.incoming_states("foo")
    assert {pair[0] for pair in td.summaries("foo")} <= incoming


def test_swift_result_extends_td_result():
    _, swift = _results()
    assert swift.bu_procs() == frozenset({"foo"})
    assert swift.total_bu_relations() == swift.bu["foo"].case_count()
    # Inherited API still works.
    assert swift.exit_states()
    assert swift.total_summaries() == sum(
        swift.summary_counts_by_proc().values()
    )


def test_metrics_visible_on_results():
    td, swift = _results()
    assert td.metrics.propagations > 0
    assert swift.metrics.summary_instantiations > 0
    assert swift.metrics.bu_triggers >= 1
