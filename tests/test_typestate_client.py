"""Tests for the type-state verification client (repro.typestate.client)."""

import pytest

from repro.framework.metrics import Budget
from repro.ir.builder import ProgramBuilder
from repro.typestate.client import find_errors, make_analyses, run_typestate
from repro.typestate.dfa import ERROR
from repro.typestate.properties import FILE_PROPERTY, ITERATOR_PROPERTY

from tests.helpers import figure1_program


def _double_open_program():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v", "h1").assign("f", "v")
        p.invoke("f", "open").invoke("f", "open")
    return b.build()


@pytest.mark.parametrize("engine", ["td", "swift", "bu"])
@pytest.mark.parametrize("domain", ["simple", "full"])
def test_all_engines_and_domains_run(engine, domain):
    report = run_typestate(
        figure1_program(), FILE_PROPERTY, engine=engine, domain=domain, k=2, theta=2
    )
    assert report.engine == engine
    assert report.property_name == "File"
    assert not report.timed_out


@pytest.mark.parametrize("engine", ["td", "swift", "bu"])
def test_double_open_detected_by_every_engine(engine):
    report = run_typestate(
        _double_open_program(), FILE_PROPERTY, engine=engine, domain="full"
    )
    assert report.error_sites == frozenset({"h1"})


def test_unknown_engine_and_domain_rejected():
    program = figure1_program()
    with pytest.raises(ValueError):
        run_typestate(program, FILE_PROPERTY, engine="sideways")
    with pytest.raises(ValueError):
        make_analyses(program, FILE_PROPERTY, domain="nope")


def test_find_errors_excludes_bootstrap():
    from repro.framework.topdown import TopDownEngine
    from repro.typestate.states import bootstrap_state
    from repro.typestate.td_analysis import SimpleTypestateTD

    # In the simple domain the bootstrap object reaches the error state
    # on every tracked call, but must not be reported.
    program = figure1_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    result = TopDownEngine(program, analysis).run([bootstrap_state(FILE_PROPERTY)])
    errors = find_errors(result)
    assert all(site != "<boot>" for (_, site) in errors)


def test_budget_produces_timeout_report():
    report = run_typestate(
        figure1_program(),
        FILE_PROPERTY,
        engine="td",
        domain="full",
        budget=Budget(max_work=3),
    )
    assert report.timed_out


def test_different_property_is_independent():
    """The Iterator property does not track open/close, so the File
    program is trivially clean under it."""
    report = run_typestate(
        _double_open_program(), ITERATOR_PROPERTY, engine="td", domain="full"
    )
    assert report.errors == frozenset()


def test_tracked_sites_filter_full_domain():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v", "h1").assign("f", "v")
        p.invoke("f", "open").invoke("f", "open")
        p.new("w", "h2").assign("g", "w")
        p.invoke("g", "open").invoke("g", "open")
    program = b.build()
    report = run_typestate(
        program,
        FILE_PROPERTY,
        engine="td",
        domain="full",
        tracked_sites=frozenset({"h2"}),
    )
    assert report.error_sites == frozenset({"h2"})
