"""Integration: all three analysis families over one generated benchmark.

The framework's promise is that any C1–C3-satisfying pair plugs into
SWIFT.  This exercises type-state (full), kill/gen (reaching defs) and
copy propagation over the same suite benchmark, asserting equivalence
with the conventional top-down analysis for each.
"""

import pytest

from repro.bench import load_benchmark
from repro.copyprop import copyprop_pair
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.killgen import LAMBDA, InitializedVarsSpec, ReachingDefsSpec, synthesize
from repro.typestate.client import make_analyses
from repro.typestate.properties import FILE_PROPERTY

BENCHMARK = "toba-s"


@pytest.fixture(scope="module")
def program():
    return load_benchmark(BENCHMARK).program


def test_typestate_family(program):
    td_analysis, bu_analysis, init = make_analyses(program, FILE_PROPERTY, "full")
    td = TopDownEngine(program, td_analysis).run([init])
    swift = SwiftEngine(program, td_analysis, bu_analysis, k=5, theta=1).run([init])
    assert swift.exit_states() == td.exit_states()
    assert swift.total_summaries() < td.total_summaries()
    assert swift.bu  # summaries were actually computed


@pytest.mark.parametrize("spec_cls", [ReachingDefsSpec, InitializedVarsSpec])
def test_killgen_family(program, spec_cls):
    spec = spec_cls(program) if spec_cls is ReachingDefsSpec else spec_cls()
    td_analysis, bu_analysis = synthesize(spec)
    td = TopDownEngine(program, td_analysis).run([LAMBDA])
    swift = SwiftEngine(program, td_analysis, bu_analysis, k=5, theta=3).run([LAMBDA])
    assert swift.exit_states() == td.exit_states()


def test_copyprop_family(program):
    td_analysis, bu_analysis = copyprop_pair(program)
    td = TopDownEngine(program, td_analysis).run([LAMBDA])
    swift = SwiftEngine(program, td_analysis, bu_analysis, k=5, theta=1).run([LAMBDA])
    assert swift.exit_states() == td.exit_states()
    # Copy propagation never splits: one case per summarized procedure.
    for proc, summary in swift.bu.items():
        assert summary.case_count() <= 1, proc


def test_copyprop_resource_facts_flow_to_hubs(program):
    """The resource registers' allocation sites reach the hubs via
    arg0 — the cross-procedure copy chain works end to end."""
    td_analysis, _ = copyprop_pair(program)
    result = TopDownEngine(program, td_analysis).run([LAMBDA])
    hub_entry = result.cfgs.entry("lib_hub0")
    facts = {f for f in result.states_at(hub_entry) if f is not LAMBDA}
    arg0_sites = {site for (var, site) in facts if var == "arg0"}
    assert any(site.startswith("res_site") for site in arg0_sites)
