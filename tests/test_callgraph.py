"""Unit tests for call graphs and Table 1 statistics."""

import pytest

from repro.bench import load_benchmark
from repro.callgraph import build_call_graph, compute_stats
from repro.ir.builder import ProgramBuilder
from repro.ir.commands import Call, Skip, seq

from tests.helpers import figure1_program


def _chain_program():
    b = ProgramBuilder()
    b.define("main", seq(Call("a"), Call("b")))
    b.define("a", Call("c"))
    b.define("b", Skip())
    b.define("c", Skip())
    b.define("dead", Call("c"))
    return b.build()


def test_call_graph_reachability():
    cg = build_call_graph(_chain_program())
    assert cg.nodes == frozenset({"main", "a", "b", "c"})
    assert ("main", "a") in set(cg.edges())
    assert cg.edge_count() == 3


def test_call_graph_depths_and_leaves():
    cg = build_call_graph(_chain_program())
    assert cg.depth_of("main") == 0
    assert cg.depth_of("a") == 1
    assert cg.depth_of("c") == 2
    assert cg.leaves() == frozenset({"b", "c"})
    assert cg.max_out_degree() == 2


def test_call_graph_unreachable_raises():
    cg = build_call_graph(_chain_program())
    with pytest.raises(KeyError):
        cg.depth_of("dead")


def test_call_graph_custom_root():
    cg = build_call_graph(_chain_program(), root="a")
    assert cg.nodes == frozenset({"a", "c"})


def test_stats_on_generated_benchmark():
    benchmark = load_benchmark("jpat-p")
    stats = compute_stats(benchmark)
    assert stats.name == "jpat-p"
    assert stats.methods_total >= stats.methods_app > 0
    assert stats.loc_total > 0 and stats.code_kb_total > 0
    # All padding must be reachable (the generator wires lib_misc_init).
    reachable = build_call_graph(benchmark.program).nodes
    padding = [p for p in benchmark.program if p.startswith("lib_misc")]
    assert set(padding) <= set(reachable)


def test_stats_row_shape():
    stats = compute_stats(load_benchmark("toba-s"))
    row = stats.row()
    assert row[0] == "toba-s"
    assert len(row) == 9
