"""Tests for the copy-propagation instantiation (repro.copyprop)."""

import itertools

import pytest

from repro.framework.conditions import check_c1, check_c2, check_c3
from repro.framework.denotational import DenotationalInterpreter
from repro.framework.swift import SwiftEngine
from repro.framework.synthesis import SynthesizedTopDown
from repro.framework.topdown import TopDownEngine
from repro.copyprop import (
    LAMBDA,
    CopyPropBU,
    CopyPropTD,
    FactPredicate,
    SubstRelation,
    copyprop_pair,
)
from repro.ir.commands import Assign, FieldLoad, FieldStore, Invoke, New, Skip

from tests.helpers import all_small_programs, figure1_program

VARS = ["a", "b", "c"]
SITES = ["h1", "h2"]


def _states():
    return [LAMBDA] + [(v, s) for v in VARS for s in SITES]


def _prims():
    prims = [Skip(), FieldStore("a", "f", "b"), Invoke("a", "open")]
    for v in VARS:
        prims.append(New(v, "h1"))
        prims.append(FieldLoad(v, "b", "f"))
        for w in VARS:
            prims.append(Assign(v, w))
    return prims


def _relations(bu):
    rels = [bu.identity()]
    rels.append(SubstRelation({"a": "b"}, frozenset()))
    rels.append(SubstRelation({"a": None}, frozenset({("a", "h1")})))
    rels.append(SubstRelation({"b": "c", "c": None}, frozenset({("c", "h2")})))
    rels.append(SubstRelation({"a": "b", "b": "a"}, frozenset()))  # a swap
    return rels


@pytest.fixture(scope="module")
def pair():
    td = CopyPropTD()
    bu = CopyPropBU(VARS)
    return td, bu


def test_td_transfer_shapes(pair):
    td, _ = pair
    assert td.transfer(New("a", "h1"), LAMBDA) == frozenset({LAMBDA, ("a", "h1")})
    assert td.transfer(New("a", "h1"), ("a", "h2")) == frozenset()
    assert td.transfer(Assign("a", "b"), ("b", "h1")) == frozenset(
        {("b", "h1"), ("a", "h1")}
    )
    assert td.transfer(Assign("a", "b"), ("a", "h1")) == frozenset()
    assert td.transfer(Assign("a", "a"), ("a", "h1")) == frozenset({("a", "h1")})
    assert td.transfer(FieldLoad("a", "b", "f"), ("a", "h1")) == frozenset()
    sigma = ("c", "h2")
    assert td.transfer(Invoke("x", "open"), sigma) == frozenset({sigma})


def test_subst_relation_canonical(pair):
    _, bu = pair
    assert SubstRelation({"a": "a"}, frozenset()) == bu.identity()
    swap1 = SubstRelation({"a": "b", "b": "a"}, frozenset())
    swap2 = SubstRelation({"b": "a", "a": "b"}, frozenset())
    assert swap1 == swap2 and hash(swap1) == hash(swap2)


def test_apply_follows_copies(pair):
    _, bu = pair
    r = SubstRelation({"a": "b"}, frozenset())
    assert bu.apply(r, ("b", "h1")) == frozenset({("b", "h1"), ("a", "h1")})
    assert bu.apply(r, ("a", "h1")) == frozenset()
    assert bu.apply(r, LAMBDA) == frozenset({LAMBDA})


def test_condition_c1(pair):
    td, bu = pair
    problems = check_c1(td, bu, _prims(), _relations(bu), _states())
    assert not problems, problems[:5]


def test_condition_c2(pair):
    _, bu = pair
    rels = _relations(bu)
    problems = check_c2(bu, itertools.product(rels, rels), _states())
    assert not problems, problems[:5]


def test_condition_c3(pair):
    _, bu = pair
    rels = _relations(bu)
    preds = [bu.domain_predicate(r) for r in rels]
    preds.append(FactPredicate(False, frozenset({"a"}), frozenset()))
    preds.append(FactPredicate(True, frozenset(), frozenset({("b", "h1")})))
    problems = check_c3(bu, rels, preds, _states())
    assert not problems, problems[:5]


def test_section51_synthesis_matches(pair):
    td, bu = pair
    synthesized = SynthesizedTopDown(bu)
    for cmd in _prims():
        for sigma in _states():
            assert synthesized.transfer(cmd, sigma) == td.transfer(cmd, sigma)


def test_fact_predicate_entailment():
    small = FactPredicate(False, frozenset(), frozenset({("a", "h1")}))
    rooty = FactPredicate(False, frozenset({"a"}), frozenset())
    assert small.entails(rooty)
    assert not rooty.entails(small)
    lam = FactPredicate(True, frozenset(), frozenset())
    assert not lam.entails(small)


@pytest.mark.parametrize("program", all_small_programs())
def test_td_matches_denotational(program):
    td, _ = copyprop_pair(program)
    oracle = DenotationalInterpreter(program, td).run([LAMBDA])
    result = TopDownEngine(program, td).run([LAMBDA])
    assert result.exit_states() == oracle


@pytest.mark.parametrize("program", all_small_programs())
@pytest.mark.parametrize("k,theta", [(1, 1), (2, 2)])
def test_swift_equals_td(program, k, theta):
    td, bu = copyprop_pair(program)
    td_result = TopDownEngine(program, td).run([LAMBDA])
    swift_result = SwiftEngine(program, td, bu, k=k, theta=theta).run([LAMBDA])
    assert swift_result.exit_states() == td_result.exit_states()
    for point in swift_result.cfgs["main"].points:
        assert swift_result.states_at(point) == td_result.states_at(point)


def test_end_to_end_copy_facts():
    program = figure1_program()
    td, _ = copyprop_pair(program)
    final = TopDownEngine(program, td).run([LAMBDA]).exit_states()
    # At main's exit: v3 and f both hold the h3 object; v1 still holds h1.
    assert ("v3", "h3") in final and ("f", "h3") in final
    assert ("v1", "h1") in final
    # f was re-copied, so the stale f facts are gone.
    assert ("f", "h1") not in final and ("f", "h2") not in final


def test_summaries_are_single_relations():
    """Copy propagation never case-splits: one bottom-up relation per
    procedure, even without pruning."""
    from repro.framework.bottomup import BottomUpEngine

    program = figure1_program()
    _, bu = copyprop_pair(program)
    result = BottomUpEngine(program, bu).analyze()
    for proc in program.reachable():
        assert result.summary(proc).case_count() == 1
