"""Round-trip tests for the MiniOO pretty-printer."""

import pytest

from repro.frontend import parse_minioo
from repro.frontend.printer import format_minioo

SOURCES = [
    """
class Stream {
  field name;
  method use(f) {
    f.#open();
    f.#close();
  }
}
class LoggingStream extends Stream {
  method use(f) {
    f.#open();
    f.#read();
    f.#close();
  }
}
main {
  s = new Stream();
  l = new LoggingStream();
  if (*) { h = s; } else { h = l; }
  h.use(s);
}
""",
    """
class Factory {
  method make() {
    x = new Factory();
    return x;
  }
  method touch() { return; }
}
main {
  f = new Factory();
  y = f.make();
  while (*) {
    y.touch();
  }
  z = y;
  f.val = z;
  w = f.val;
}
""",
    """
class A { }
main {
  a = new A();
  if (*) { b = a; }
}
""",
]


@pytest.mark.parametrize("source", SOURCES)
def test_round_trip(source):
    first = parse_minioo(source)
    text = format_minioo(first)
    second = parse_minioo(text)
    assert set(second.classes) == set(first.classes)
    for name in first.classes:
        a, b = first.classes[name], second.classes[name]
        assert a.superclass == b.superclass
        assert a.fields == b.fields
        assert a.methods == b.methods
    assert second.main == first.main


@pytest.mark.parametrize("source", SOURCES)
def test_format_is_stable(source):
    program = parse_minioo(source)
    once = format_minioo(program)
    twice = format_minioo(parse_minioo(once))
    assert once == twice
