"""Unit tests for metrics/budgets and the experiment harness."""

import multiprocessing
import os
import time

import pytest

from repro.framework.metrics import Budget, BudgetExceededError, Metrics
from repro.experiments.harness import (
    EngineRun,
    drop_label,
    format_table,
    speedup_label,
)


def test_metrics_total_work_and_merge():
    a = Metrics(transfers=5, rtransfers=3, compositions=2, propagations=7)
    assert a.total_work == 17
    b = Metrics(transfers=1, summary_instantiations=4, pruned_relations=9)
    a.merge(b)
    assert a.transfers == 6
    assert a.summary_instantiations == 4
    assert a.pruned_relations == 9
    assert a.total_work == 22


def test_metrics_merge_folds_every_field():
    """The fold iterates dataclass fields, so newly added counter
    families (cache counters, store counters) can never be dropped."""
    import dataclasses

    a, b = Metrics(), Metrics()
    for i, spec in enumerate(dataclasses.fields(Metrics), start=1):
        setattr(b, spec.name, i)
    a.merge(b)
    for i, spec in enumerate(dataclasses.fields(Metrics), start=1):
        assert getattr(a, spec.name) == i, spec.name


def test_store_counters_not_in_total_work():
    m = Metrics(transfers=3, store_hits=100, store_misses=50, store_invalidated=7)
    assert m.total_work == 3


def test_budget_work_limit():
    budget = Budget(max_work=10)
    budget.check(Metrics(transfers=10))  # at the limit: fine
    with pytest.raises(BudgetExceededError) as info:
        budget.check(Metrics(transfers=11))
    assert info.value.what == "total_work"
    assert info.value.spent == 11 and info.value.limit == 10


def test_budget_relations_limit():
    budget = Budget(max_relations=2)
    with pytest.raises(BudgetExceededError):
        budget.check(Metrics(relations_created=3))


def test_budget_time_limit():
    budget = Budget(max_seconds=0.01)
    time.sleep(0.02)
    with pytest.raises(BudgetExceededError):
        budget.check(Metrics())
    budget.restart_clock()
    budget.max_seconds = 10.0
    budget.check(Metrics())  # fresh clock: fine


def test_budget_unlimited_by_default():
    Budget().check(Metrics(transfers=10**9))  # no limits, no raise


def test_budget_error_kind_matches_remaining_keys():
    from repro.framework.metrics import BUDGET_KINDS

    budget = Budget(max_work=10, max_relations=5)
    with pytest.raises(BudgetExceededError) as info:
        budget.check(Metrics(transfers=11))
    assert info.value.kind == info.value.what == "total_work"
    assert info.value.kind in BUDGET_KINDS
    headroom = budget.remaining(Metrics(transfers=4, relations_created=1))
    assert set(headroom) == set(BUDGET_KINDS)
    assert headroom["total_work"] == 6
    assert headroom["relations_created"] == 4
    assert headroom["seconds"] is None  # disabled limit


def test_budget_remaining_clamps_at_zero():
    headroom = Budget(max_work=10).remaining(Metrics(transfers=25))
    assert headroom["total_work"] == 0
    assert headroom["relations_created"] is None


def test_budget_seconds_error_reports_float():
    """Sub-second overruns used to be truncated by int(): a 0.6s overrun
    of a 0.05s budget reported spent=0."""
    budget = Budget(max_seconds=0.05)
    budget._started_at = time.monotonic() - 0.6
    with pytest.raises(BudgetExceededError) as info:
        budget.check(Metrics())
    assert info.value.what == "seconds"
    assert isinstance(info.value.spent, float)
    assert info.value.spent >= 0.5
    assert info.value.limit == 0.05


def _run(engine="td", work=100, timed_out=False, td=10, bu=0):
    return EngineRun(
        benchmark="x",
        engine=engine,
        k=None,
        theta=None,
        seconds=1.0,
        work=work,
        td_summaries=td,
        bu_summaries=bu,
        timed_out=timed_out,
        error_sites=frozenset(),
    )


def test_time_label():
    assert _run().time_label == "1.00s"
    assert _run(timed_out=True).time_label == "timeout"


def test_speedup_label():
    baseline = _run(work=1000)
    swift = _run(engine="swift", work=100)
    assert speedup_label(baseline, swift) == "10.0X"
    assert speedup_label(_run(timed_out=True), swift) == "-"
    assert speedup_label(baseline, _run(work=0)) == "-"


def test_speedup_label_swift_timeout():
    """A ratio against a truncated SWIFT run is meaningless: "-" when
    *either* side timed out (previously only the baseline was checked,
    so a timed-out SWIFT run printed a bogus <1X speedup)."""
    baseline = _run(work=1000)
    truncated = _run(engine="swift", work=100, timed_out=True)
    assert speedup_label(baseline, truncated) == "-"
    assert speedup_label(
        _run(timed_out=True), _run(engine="swift", timed_out=True)
    ) == "-"


def test_drop_label():
    assert drop_label(100, 5, False) == "95%"
    assert drop_label(100, 100, False) == "0%"
    assert drop_label(100, 5, True) == "-"
    assert drop_label(0, 5, False) == "-"


def test_format_table_alignment():
    text = format_table(
        ["name", "count"],
        [["alpha", 1], ["b", 22]],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("name")
    assert "-----" in lines[2]
    # Numeric column right-aligned.
    assert lines[3].endswith("    1")
    assert lines[4].endswith("   22")


def test_format_table_empty_rows():
    text = format_table(["a", "bb"], [])
    assert "a" in text and "bb" in text


# -- Budget clock semantics ----------------------------------------------------------
def _tiny_program():
    from repro.ir.builder import ProgramBuilder

    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("a", "h1").invoke("a", "open").invoke("a", "close")
    return b.build()


def test_bottomup_analyze_restarts_stale_clock():
    """A Budget built long before the run must time the analysis, not
    the setup: analyze() restarts the wall clock uniformly (this was
    previously skipped whenever a shared Metrics was passed in)."""
    from repro.framework.bottomup import BottomUpEngine
    from repro.typestate.bu_analysis import SimpleTypestateBU
    from repro.typestate.properties import FILE_PROPERTY

    budget = Budget(max_seconds=5.0)
    budget._started_at = time.monotonic() - 60.0  # stale setup phase
    engine = BottomUpEngine(
        _tiny_program(),
        SimpleTypestateBU(FILE_PROPERTY),
        budget=budget,
        metrics=Metrics(),  # shared metrics, as SWIFT passes them
    )
    result = engine.analyze()
    assert not result.timed_out


def test_nested_run_keeps_enclosing_clock():
    """restart_clock=False (SWIFT's nested run_bu) must NOT extend the
    enclosing deadline: a stale clock times out immediately."""
    from repro.framework.bottomup import BottomUpEngine
    from repro.typestate.bu_analysis import SimpleTypestateBU
    from repro.typestate.properties import FILE_PROPERTY

    budget = Budget(max_seconds=5.0)
    budget._started_at = time.monotonic() - 60.0
    engine = BottomUpEngine(
        _tiny_program(),
        SimpleTypestateBU(FILE_PROPERTY),
        budget=budget,
        restart_clock=False,
    )
    result = engine.analyze()
    assert result.timed_out


def test_topdown_run_restarts_stale_clock():
    from repro.framework.topdown import TopDownEngine
    from repro.typestate.properties import FILE_PROPERTY
    from repro.typestate.states import bootstrap_state
    from repro.typestate.td_analysis import SimpleTypestateTD

    budget = Budget(max_seconds=5.0)
    budget._started_at = time.monotonic() - 60.0
    engine = TopDownEngine(
        _tiny_program(), SimpleTypestateTD(FILE_PROPERTY), budget=budget
    )
    result = engine.run([bootstrap_state(FILE_PROPERTY)])
    assert not result.timed_out


# -- parallel harness ----------------------------------------------------------------
def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _fail_in_worker_on_two(x):
    """Picklable row fn: raises for x == 2 only inside pool workers."""
    if x == 2 and _in_worker():
        raise ValueError("transient worker failure")
    return x * 10


def _kill_worker_on_three(x):
    """Picklable row fn: hard-kills its worker process for x == 3."""
    if x == 3 and _in_worker():
        os._exit(1)  # breaks the pool (no exception, no result)
    return x * 10


def _always_fail(x):
    raise KeyError(x)


def test_map_rows_preserves_order():
    from repro.experiments.harness import map_rows

    items = ["aaa", "b", "cc"]
    assert map_rows(len, items) == [3, 1, 2]
    assert map_rows(len, items, parallel=2) == [3, 1, 2]


def test_map_rows_recovers_failed_row():
    """A worker exception must not discard the completed rows: the
    failed item is re-run serially and order is preserved (previously
    pool.map dropped the whole table)."""
    from repro.experiments.harness import map_rows

    assert map_rows(_fail_in_worker_on_two, [1, 2, 3, 4], parallel=2) == [
        10,
        20,
        30,
        40,
    ]


def test_map_rows_recovers_from_broken_pool():
    """A worker killed outright (OOM killer, crashed interpreter) breaks
    the pool; completed rows are kept and the rest re-run serially."""
    from repro.experiments.harness import map_rows

    assert map_rows(_kill_worker_on_three, [1, 2, 3, 4], parallel=2) == [
        10,
        20,
        30,
        40,
    ]


def test_map_rows_deterministic_failure_raises_serially():
    """An fn that fails everywhere still raises — with the parent's
    traceback, after the serial retry."""
    from repro.experiments.harness import map_rows

    with pytest.raises(KeyError):
        map_rows(_always_fail, [1, 2], parallel=2)


def test_run_engine_records_trace(tmp_path):
    """With a trace dir set (--trace DIR), run_engine dumps per-run
    JSONL without perturbing the deterministic work counters."""
    from repro.bench import load_benchmark
    from repro.experiments import harness
    from repro.framework.tracing import read_jsonl

    bench = load_benchmark("jpat-p")
    harness.set_trace_dir(tmp_path)
    try:
        traced = harness.run_engine(bench, "swift")
    finally:
        harness.set_trace_dir(None)
    path = tmp_path / "jpat-p_swift.jsonl"
    assert path.exists()
    assert read_jsonl(path)
    plain = harness.run_engine(bench, "swift")
    assert traced.work == plain.work
    assert traced.error_sites == plain.error_sites


def test_parallel_table2_rows_match_serial():
    """`experiments --parallel N` must produce the same rows as the
    serial run (work counters are deterministic; only wall clock may
    differ).  Uses the two smallest suite benchmarks."""
    from repro.experiments import table2
    from repro.experiments.harness import aggregate_metrics

    names = ["jpat-p", "elevator"]
    serial = table2.run(names=names)
    parallel = table2.run(names=names, parallel=2)
    assert [r.benchmark for r in serial] == [r.benchmark for r in parallel]
    for s, p in zip(serial, parallel):
        for a, b in ((s.td, p.td), (s.bu, p.bu), (s.swift, p.swift)):
            assert a.engine == b.engine
            assert a.work == b.work
            assert a.td_summaries == b.td_summaries
            assert a.bu_summaries == b.bu_summaries
            assert a.timed_out == b.timed_out
            assert a.error_sites == b.error_sites
    # Per-row Metrics crossed the process boundary and can be merged.
    merged = aggregate_metrics(r.swift for r in parallel)
    assert merged.total_work == sum(r.swift.work for r in parallel)
