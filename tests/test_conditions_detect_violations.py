"""Negative tests: the C1–C3 checkers must *catch* broken analyses.

A checker that never fires is no evidence; these tests feed
deliberately wrong analyses through the checkers and assert
counterexamples come back.
"""

from repro.framework.conditions import check_c1, check_c2, check_c3
from repro.framework.predicates import TRUE, Conjunction
from repro.ir.commands import Assign, Invoke
from repro.typestate.bu_analysis import (
    HaveAtom,
    SimpleTypestateBU,
    TransformerRelation,
)
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import small_state_universe

VARS = ["f", "g"]
SITES = ["h1"]


def _states():
    return small_state_universe(FILE_PROPERTY, SITES, VARS, max_must=1)


class _ImpreciseTD(SimpleTypestateTD):
    """Breaks C1: drops the alias-kill on assignment."""

    def transfer(self, cmd, sigma):
        if isinstance(cmd, Assign) and cmd.rhs not in sigma.must:
            return frozenset({sigma})  # wrong: keeps lhs's alias
        return super().transfer(cmd, sigma)


class _BrokenComposeBU(SimpleTypestateBU):
    """Breaks C2: composition forgets the second relation's predicate."""

    def rcompose(self, r1, r2):
        out = super().rcompose(r1, r2)
        return frozenset(
            TransformerRelation(r.iota, r.removed, r.added, TRUE)
            if isinstance(r, TransformerRelation)
            else r
            for r in out
        )


class _BrokenPreImageBU(SimpleTypestateBU):
    """Breaks C3: the pre-image ignores the relation's own masks."""

    def pre_image(self, r, p):
        if p is TRUE:
            return frozenset({r.pred}) if r.pred is not TRUE else frozenset({TRUE})
        return frozenset({p})


def test_check_c1_catches_imprecise_td():
    td = _ImpreciseTD(FILE_PROPERTY)
    bu = SimpleTypestateBU(FILE_PROPERTY)
    problems = check_c1(
        td, bu, [Assign("f", "g")], [bu.identity()], _states()
    )
    assert problems
    assert "C1 violated" in problems[0]


def test_check_c2_catches_broken_compose():
    bu = _BrokenComposeBU(FILE_PROPERTY)
    guarded = TransformerRelation(
        FILE_PROPERTY.identity_function(),
        frozenset(),
        frozenset(),
        Conjunction.of([HaveAtom("f")]),
    )
    kills_f = TransformerRelation(
        FILE_PROPERTY.identity_function(),
        frozenset({"f"}),
        frozenset(),
        TRUE,
    )
    # Compose guarded-then-killer: the composed predicate must retain
    # have(f); the broken rcompose erases it, over-applying the result.
    problems = check_c2(bu, [(guarded, kills_f)], _states())
    assert problems
    assert "C2 violated" in problems[0]


def test_check_c3_catches_broken_pre_image():
    bu = _BrokenPreImageBU(FILE_PROPERTY)
    adds_f = TransformerRelation(
        FILE_PROPERTY.identity_function(),
        frozenset(),
        frozenset({"f"}),
        TRUE,
    )
    pred = Conjunction.of([HaveAtom("f")])
    problems = check_c3(bu, [adds_f], [pred], _states())
    assert problems
    assert "C3" in problems[0]


def test_checkers_pass_on_correct_pair_sanity():
    """Control: the same harness with the correct analyses is clean."""
    td = SimpleTypestateTD(FILE_PROPERTY)
    bu = SimpleTypestateBU(FILE_PROPERTY)
    assert not check_c1(td, bu, [Assign("f", "g"), Invoke("f", "open")],
                        [bu.identity()], _states())
