"""Unit tests for the interval domain and the interval×typestate product.

The algebra layer of DESIGN §14: interval lattice laws (including the
widening/narrowing contracts that make value-mode fixpoints terminate),
sparse environments, compositional transforms and their skeleton-based
relation-set widening, and the reduced product's row-wise reduction.
"""

import pytest

from repro.ir.commands import Assign, FieldLoad, Invoke, New, Skip
from repro.numeric.bu_analysis import (
    IDENTITY_TRANSFORM,
    IntervalBU,
    IntervalTransform,
    collapse_by_skeleton,
    transform_skeleton,
)
from repro.numeric.interval import (
    EMPTY_ENV,
    TOP,
    ZERO,
    Interval,
    IntervalEnv,
    numeric_op,
)
from repro.numeric.product import (
    IntervalTypestateBU,
    IntervalTypestateTD,
    ProductValue,
    product_bootstrap,
)
from repro.numeric.td_analysis import IntervalTD
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state


# -- intervals -------------------------------------------------------------------


def test_interval_empty_rejected():
    with pytest.raises(ValueError):
        Interval(3, 2)


def test_interval_order_and_join_meet():
    a, b = Interval(0, 5), Interval(3, 10)
    assert a.leq(TOP) and b.leq(TOP)
    assert not a.leq(b)
    assert a.join(b) == Interval(0, 10)
    assert a.meet(b) == Interval(3, 5)
    assert Interval(0, 1).meet(Interval(5, 9)) is None
    assert a.leq(a.join(b)) and b.leq(a.join(b))
    assert a.meet(b).leq(a)


def test_interval_widen_unstable_bounds_to_infinity():
    prev, new = Interval(0, 3), Interval(0, 4)
    widened = prev.widen(prev.join(new))
    assert widened == Interval(0, None)  # hi moved: jumps to +inf
    assert prev.widen(prev) == prev  # stable bounds survive
    assert Interval(1, 3).widen(Interval(0, 3)) == Interval(None, 3)


def test_interval_widen_covers_both_arguments():
    for prev, new in [
        (Interval(0, 0), Interval(0, 7)),
        (Interval(-2, 5), Interval(-9, 5)),
        (Interval(0, 1), Interval(None, 2)),
    ]:
        widened = prev.widen(prev.join(new))
        assert prev.leq(widened) and new.leq(widened)


def test_interval_narrow_refines_only_infinite_bounds():
    widened = Interval(0, None)
    assert widened.narrow(Interval(0, 7)) == Interval(0, 7)
    # A finite bound is never moved by narrowing (termination).
    assert Interval(0, 9).narrow(Interval(2, 5)) == Interval(0, 9)


def test_interval_shift_and_add():
    assert ZERO.shift(3) == Interval(3, 3)
    assert Interval(1, None).shift(-1) == Interval(0, None)
    assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
    assert Interval(1, 2).add(TOP) == TOP


def test_numeric_op_parsing():
    assert numeric_op("incr") == ("shift", 1)
    assert numeric_op("decr") == ("shift", -1)
    assert numeric_op("reset") == ("const", ZERO)
    assert numeric_op("le10") == ("le", 10)
    assert numeric_op("ge-3") == ("ge", -3)
    for untracked in ("open", "close", "read", "write", "le", "gex", "le1x"):
        assert numeric_op(untracked) is None


# -- environments ----------------------------------------------------------------


def test_env_absent_is_top_and_top_dropped():
    env = IntervalEnv([("x", Interval(0, 1)), ("y", TOP)])
    assert env.get("x") == Interval(0, 1)
    assert env.get("y") == TOP
    assert env.get("z") == TOP
    assert env.set("x", TOP).bindings == ()
    assert EMPTY_ENV.bindings == ()


def test_env_join_keeps_only_shared_bindings():
    a = IntervalEnv([("x", Interval(0, 1)), ("y", Interval(5, 5))])
    b = IntervalEnv([("x", Interval(3, 4))])
    joined = a.join(b)
    assert joined.get("x") == Interval(0, 4)
    assert joined.get("y") == TOP  # bound on one side only: joins to TOP
    assert a.leq(joined) and b.leq(joined)


def test_env_widen_then_narrow_round_trip():
    prev = IntervalEnv([("c", Interval(0, 0))])
    new = IntervalEnv([("c", Interval(0, 1))])
    widened = prev.widen(prev.join(new))
    assert widened.get("c") == Interval(0, None)
    narrowed = widened.narrow(IntervalEnv([("c", Interval(0, 7))]))
    assert narrowed.get("c") == Interval(0, 7)


def test_env_canonical_equality_and_str():
    a = IntervalEnv([("x", Interval(0, 1)), ("y", Interval(2, 3))])
    b = IntervalEnv([("y", Interval(2, 3)), ("x", Interval(0, 1))])
    assert a == b and hash(a) == hash(b) and str(a) == str(b)


# -- top-down transfer -----------------------------------------------------------


def test_td_transfer_new_assign_and_guards():
    td = IntervalTD()
    env = next(iter(td.transfer(New("x", "h"), EMPTY_ENV)))
    assert env.get("x") == ZERO
    env = next(iter(td.transfer(Invoke("x", "incr"), env)))
    assert env.get("x") == Interval(1, 1)
    env = next(iter(td.transfer(Assign("y", "x"), env)))
    assert env.get("y") == Interval(1, 1)
    # A satisfiable guard meets; an infeasible one kills the path.
    env = next(iter(td.transfer(Invoke("x", "le5"), env)))
    assert env.get("x") == Interval(1, 1)
    assert td.transfer(Invoke("x", "ge9"), env) == frozenset()
    # Untracked methods and loads are numeric no-ops / forgets.
    assert td.transfer(Invoke("x", "open"), env) == frozenset({env})
    forgot = next(iter(td.transfer(FieldLoad("x", "y", "fld"), env)))
    assert forgot.get("x") == TOP


def test_td_is_infinite_and_finite_lattice_hooks():
    td = IntervalTD()
    assert not td.is_finite()
    a = IntervalEnv([("x", Interval(0, 1))])
    b = IntervalEnv([("x", Interval(0, 5))])
    assert td.leq(a, b) and not td.leq(b, a)
    assert td.join(a, b) == b
    assert td.widen(a, b).get("x") == Interval(0, None)
    assert td.narrow(td.widen(a, b), b) == b


# -- bottom-up transforms --------------------------------------------------------


def test_transform_identity_actions_are_dropped():
    t = IntervalTransform([("x", ("shift", "x", ZERO))])
    assert t == IDENTITY_TRANSFORM
    assert t.resolve("x") == ("shift", "x", ZERO)


def test_rtransfer_and_rcompose_track_counters():
    bu = IntervalBU()
    (t,) = bu.rtransfer(New("c", "h"), bu.identity())
    (t,) = bu.rtransfer(Invoke("c", "incr"), t)
    assert t.resolve("c") == ("const", Interval(1, 1))
    # Composition substitutes through the first transform.
    (shift,) = bu.rtransfer(Invoke("d", "incr"), bu.identity())
    (comp,) = bu.rcompose(shift, shift)
    assert comp.resolve("d") == ("shift", "d", Interval(2, 2))
    # Apply reads sources from the *entry* environment.
    env = IntervalEnv([("d", Interval(5, 5))])
    (out,) = bu.apply(comp, env)
    assert out.get("d") == Interval(7, 7)


def test_rtransfer_guard_on_const_is_exact():
    bu = IntervalBU()
    (t,) = bu.rtransfer(New("c", "h"), bu.identity())
    (guarded,) = bu.rtransfer(Invoke("c", "le0"), t)
    assert guarded.resolve("c") == ("const", ZERO)
    assert bu.rtransfer(Invoke("c", "ge3"), t) == frozenset()
    # Guard on a non-constant source is dropped (sound over-approx).
    assert bu.rtransfer(Invoke("x", "le5"), bu.identity()) == frozenset(
        {bu.identity()}
    )


def test_skeleton_collapse_bounds_set_and_widen_across_iterates():
    def const(var, lo, hi):
        return IntervalTransform([(var, ("const", Interval(lo, hi)))])

    group = frozenset({const("c", 0, 1), const("c", 0, 2), const("c", 0, 3)})
    collapsed = collapse_by_skeleton(group)
    assert len(collapsed) == 1
    (merged,) = collapsed
    assert merged.resolve("c") == ("const", Interval(0, 3))
    # Same skeleton, moved payload across iterates: widened to +inf.
    again = collapse_by_skeleton(frozenset({const("c", 0, 4)}), collapsed)
    (widened,) = again
    assert widened.resolve("c") == ("const", Interval(0, None))
    # Stable payload: widening leaves it alone (chain stabilizes).
    stable = collapse_by_skeleton(again, again)
    assert stable == again


def test_rwiden_is_collapse():
    bu = IntervalBU()
    assert not bu.r_is_finite()
    t1 = IntervalTransform([("c", ("const", Interval(0, 1)))])
    t2 = IntervalTransform([("c", ("const", Interval(0, 2)))])
    assert bu.rwiden(frozenset(), frozenset({t1, t2})) == collapse_by_skeleton(
        frozenset({t1, t2})
    )
    assert transform_skeleton(t1) == transform_skeleton(t2)


# -- the reduced product ---------------------------------------------------------


def test_product_rows_merge_by_typestate():
    sigma = bootstrap_state(FILE_PROPERTY)
    pv = ProductValue(
        [
            (sigma, IntervalEnv([("x", Interval(0, 1))])),
            (sigma, IntervalEnv([("x", Interval(3, 4))])),
        ]
    )
    assert len(pv.rows) == 1
    assert pv.rows[0][1].get("x") == Interval(0, 4)


def test_product_lattice_rowwise():
    sigma = bootstrap_state(FILE_PROPERTY)
    small = ProductValue([(sigma, IntervalEnv([("x", Interval(0, 1))]))])
    big = ProductValue([(sigma, IntervalEnv([("x", Interval(0, 9))]))])
    assert small.leq(big) and not big.leq(small)
    assert small.join(big) == big
    widened = small.widen(big)
    assert widened.rows[0][1].get("x") == Interval(0, None)
    assert widened.narrow(big) == big


def test_product_transfer_reduction_kills_infeasible_row():
    td = IntervalTypestateTD(FILE_PROPERTY)
    pv = product_bootstrap(FILE_PROPERTY)
    (pv,) = td.transfer(New("x", "h"), pv)
    # Every row binds x to [0,0]; a contradictory guard kills them all,
    # sharpening the type-state side (the reduction).
    assert td.transfer(Invoke("x", "ge7"), pv) == frozenset()
    (ok,) = td.transfer(Invoke("x", "le7"), pv)
    assert all(env.get("x") == ZERO for _, env in ok.rows)


def test_product_bu_componentwise_and_predicates():
    bu = IntervalTypestateBU(FILE_PROPERTY)
    assert not bu.r_is_finite()
    ident = bu.identity()
    outs = bu.rtransfer(Skip(), ident)
    assert outs == frozenset({ident})
    pv = product_bootstrap(FILE_PROPERTY)
    applied = bu.apply(ident, pv)
    assert applied == frozenset({pv})
    assert bu.in_domain(ident, pv)
    assert bu.domain_predicate(ident) == bu.ts.domain_predicate(ident.ts)


def test_product_rwiden_groups_by_ts_and_skeleton():
    bu = IntervalTypestateBU(FILE_PROPERTY)
    ident = bu.identity()

    def with_const(lo, hi):
        num = IntervalTransform([("c", ("const", Interval(lo, hi)))])
        from repro.numeric.product import ProductRelation

        return ProductRelation(ident.ts, num)

    first = bu.rwiden(frozenset(), frozenset({with_const(0, 1), with_const(0, 2)}))
    assert len(first) == 1
    (merged,) = first
    assert merged.num.resolve("c") == ("const", Interval(0, 2))
    second = bu.rwiden(first, frozenset({with_const(0, 3)}))
    (widened,) = second
    assert widened.num.resolve("c") == ("const", Interval(0, None))
    assert widened.ts == ident.ts
