"""Tests for the tabulating top-down engine against the denotational oracle."""

import pytest

from repro.framework.denotational import DenotationalInterpreter
from repro.framework.metrics import Budget
from repro.framework.topdown import TopDownEngine
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_small_programs, figure1_program


@pytest.mark.parametrize("program", all_small_programs())
def test_tabulation_matches_denotational_at_main_exit(program):
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    oracle = DenotationalInterpreter(program, analysis).run(initial)
    result = TopDownEngine(program, analysis).run(initial)
    assert result.exit_states() == oracle


def test_figure1_summary_counts():
    """The paper's example: TD re-analyzes foo in many contexts.

    The paper counts five contexts (T1-T5); our modelling of
    parameters as global registers keeps caller variables (v1, v2, v3)
    in the must sets and adds the bootstrap object, so foo sees eight
    distinct incoming abstract states — same phenomenon, finer states.
    """
    program = figure1_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    result = TopDownEngine(program, analysis).run([bootstrap_state(FILE_PROPERTY)])
    incoming = result.incoming_states("foo")
    assert len(incoming) == 8
    # The paper's T1/T2/T5 analogues: f in the must set, state closed.
    strong_contexts = [s for s in incoming if "f" in s.must and s.state == "closed"]
    assert len(strong_contexts) == 3


def test_states_at_every_point_nonempty_for_reachable():
    program = figure1_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    result = TopDownEngine(program, analysis).run([bootstrap_state(FILE_PROPERTY)])
    main_cfg = result.cfgs["main"]
    for point in main_cfg.points:
        assert result.states_at(point), f"no states at {point}"


def test_budget_timeout_marks_result():
    program = figure1_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    engine = TopDownEngine(program, analysis, budget=Budget(max_work=5))
    result = engine.run([bootstrap_state(FILE_PROPERTY)])
    assert result.timed_out


def test_entry_counts_are_multisets():
    program = figure1_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    result = TopDownEngine(program, analysis).run([bootstrap_state(FILE_PROPERTY)])
    counts = result.entry_counts["foo"]
    assert sum(counts.values()) >= len(counts) >= 1


def test_summary_counts_by_proc_keys():
    program = figure1_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    result = TopDownEngine(program, analysis).run([bootstrap_state(FILE_PROPERTY)])
    by_proc = result.summary_counts_by_proc()
    assert set(by_proc) == {"main", "foo"}
    assert by_proc["foo"] == result.summary_count("foo")
    assert result.total_summaries() == sum(by_proc.values())


# -- hot-path optimizations are invisible (tables, counts, counters) -----------------
from hypothesis import given

from tests.test_property_based import ENGINE_SETTINGS, programs


@ENGINE_SETTINGS
@given(program=programs())
def test_optimized_td_identical_to_unoptimized(program):
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    fast = TopDownEngine(program, analysis).run(initial)
    slow = TopDownEngine(
        program, analysis, enable_caches=False, indexed_summaries=False
    ).run(initial)
    assert fast.td == slow.td
    assert dict(fast.entry_counts) == dict(slow.entry_counts)
    assert fast.metrics.total_work == slow.metrics.total_work
    assert fast.metrics.transfers == slow.metrics.transfers
    assert fast.metrics.propagations == slow.metrics.propagations
    # Every logical transfer went through the memo table; the ablated
    # engine reports no cache traffic at all.
    assert (
        fast.metrics.transfer_cache_hits + fast.metrics.transfer_cache_misses
        == fast.metrics.transfers
    )
    assert slow.metrics.cache_hits == 0 and slow.metrics.cache_misses == 0
