"""Unit tests for IgnoredStates, excl/clean, and the pruning operators."""

from collections import Counter

from repro.framework.ignored import IgnoredStates
from repro.framework.metrics import Metrics
from repro.framework.predicates import TRUE, Conjunction
from repro.framework.pruning import FrequencyPruner, NoPruner, clean, excl
from repro.typestate.bu_analysis import (
    HaveAtom,
    NotHaveAtom,
    SimpleTypestateBU,
    TransformerRelation,
)
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState


def _bu():
    return SimpleTypestateBU(FILE_PROPERTY)


def _ignored(bu, preds=()):
    return IgnoredStates(bu.pred_satisfied, bu.pred_entails, preds)


def _state(*must):
    return AbstractState("h", "closed", frozenset(must))


def _pred(*atoms):
    return Conjunction.of(list(atoms))


def _rel(pred):
    return TransformerRelation(
        FILE_PROPERTY.identity_function(), frozenset(), frozenset(), pred
    )


def test_membership_is_union_of_predicates():
    bu = _bu()
    sigma = _ignored(bu, [_pred(HaveAtom("f")), _pred(HaveAtom("g"))])
    assert _state("f") in sigma
    assert _state("g") in sigma
    assert _state("x") not in sigma


def test_normalization_drops_stronger_predicates():
    bu = _bu()
    weak = _pred(HaveAtom("f"))
    strong = _pred(HaveAtom("f"), HaveAtom("g"))
    sigma = _ignored(bu, [weak, strong])
    # strong entails weak, so only weak survives.
    assert sigma.predicates == frozenset({weak})


def test_union_is_incremental_and_monotone():
    bu = _bu()
    sigma = _ignored(bu, [_pred(HaveAtom("f"))])
    bigger = sigma.union([_pred(NotHaveAtom("g"))])
    assert len(bigger) == 2
    assert _state("f") in bigger and _state() in bigger
    # Union with an already-covered predicate returns the same object.
    same = bigger.union([_pred(HaveAtom("f"), HaveAtom("g"))])
    assert same.predicates == bigger.predicates


def test_union_sets_and_equality():
    bu = _bu()
    a = _ignored(bu, [_pred(HaveAtom("f"))])
    b = _ignored(bu, [_pred(HaveAtom("g"))])
    both = a.union_sets(b)
    assert len(both) == 2
    assert both == _ignored(bu, [_pred(HaveAtom("g")), _pred(HaveAtom("f"))])
    assert hash(both) == hash(a.union_sets(b))


def test_covers_conservative():
    bu = _bu()
    sigma = _ignored(bu, [_pred(HaveAtom("f"))])
    assert sigma.covers(_pred(HaveAtom("f"), NotHaveAtom("g")))
    assert not sigma.covers(_pred(NotHaveAtom("g")))


def test_excl_removes_covered_relations():
    bu = _bu()
    sigma = _ignored(bu, [_pred(HaveAtom("f"))])
    covered = _rel(_pred(HaveAtom("f")))
    alive = _rel(_pred(NotHaveAtom("f")))
    remaining = excl(bu, frozenset({covered, alive}), sigma)
    assert remaining == frozenset({alive})
    relations, out_sigma = clean(bu, frozenset({covered, alive}), sigma)
    assert relations == frozenset({alive}) and out_sigma is sigma


def test_no_pruner_keeps_everything():
    bu = _bu()
    pruner = NoPruner(bu)
    relations = frozenset({_rel(TRUE), _rel(_pred(HaveAtom("f")))})
    kept, sigma = pruner.prune("p", relations, _ignored(bu))
    assert kept == relations and sigma.is_empty()


def test_frequency_pruner_keeps_top_theta_by_rank():
    bu = _bu()
    metrics = Metrics()
    incoming = {"p": Counter({_state("f"): 3, _state(): 1})}
    pruner = FrequencyPruner(bu, theta=1, incoming=incoming, metrics=metrics)
    have = _rel(_pred(HaveAtom("f")))
    havent = _rel(_pred(NotHaveAtom("f")))
    kept, sigma = pruner.prune("p", frozenset({have, havent}), _ignored(bu))
    assert kept == frozenset({have})
    assert _state() in sigma and _state("f") not in sigma
    assert metrics.pruned_relations == 1


def test_frequency_pruner_small_sets_untouched():
    bu = _bu()
    pruner = FrequencyPruner(bu, theta=5, incoming={})
    relations = frozenset({_rel(TRUE)})
    kept, sigma = pruner.prune("p", relations, _ignored(bu))
    assert kept == relations and sigma.is_empty()


def test_frequency_pruner_rank_counts_multiplicity():
    bu = _bu()
    incoming = {"p": Counter({_state("f"): 2, _state("f", "g"): 5})}
    pruner = FrequencyPruner(bu, theta=1, incoming=incoming)
    assert pruner.rank("p", _rel(_pred(HaveAtom("f")))) == 7
    assert pruner.rank("p", _rel(_pred(HaveAtom("g")))) == 5
    assert pruner.rank("missing", _rel(TRUE)) == 0


def test_frequency_pruner_rejects_bad_theta():
    import pytest

    with pytest.raises(ValueError):
        FrequencyPruner(_bu(), theta=0)
