"""Fuzz loop for the batch planner (ISSUE 10 satellite).

Hypothesis drives random target sets over random program shapes and
checks the one property the planner promises: batch answers are
byte-identical to per-target :func:`repro.query.run_query` answers.
A mismatch shrinks to a minimal (shape, target set) witness — the
shapes are chosen so shrinking moves toward fewer procedures and
fewer targets, not toward a different topology.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workloads import hub_flood, scc_heavy, wide_fanout
from repro.incremental import SummaryStore, analyze_with_store
from repro.query import clear_query_cache, run_query, run_query_batch
from repro.typestate.properties import FILE_PROPERTY

from tests.test_property_based import programs

FUZZ_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Small instances of every workload family, keyed for shrinking: the
#: earlier entries are the smaller programs.
SHAPE_BUILDERS = [
    lambda seed: hub_flood(3 + seed % 3),
    lambda seed: wide_fanout(8 + 4 * (seed % 3), seed=seed),
    lambda seed: scc_heavy(8 + 4 * (seed % 3), seed=seed),
]


@st.composite
def shape_and_targets(draw):
    builder = draw(st.sampled_from(SHAPE_BUILDERS))
    program = builder(draw(st.integers(min_value=0, max_value=5)))
    names = sorted(program.names())
    targets = draw(
        st.lists(st.sampled_from(names), min_size=1, max_size=6)
    )
    return program, targets


def assert_batch_matches_sequential(program, targets, engine):
    with tempfile.TemporaryDirectory() as root:
        store = SummaryStore(root)
        analyze_with_store(
            program, FILE_PROPERTY, store, engine=engine, domain="simple"
        )
        clear_query_cache()
        batch = run_query_batch(
            program, FILE_PROPERTY, store, targets, engine=engine
        )
        clear_query_cache()
        for target in targets:
            single = run_query(
                program, FILE_PROPERTY, store, target, engine=engine
            )
            assert batch.answer_for(target) == single.answer, (
                engine,
                target,
                sorted(program.names()),
            )
        assert batch.out_of_cone_interior_rows == 0


@FUZZ_SETTINGS
@given(
    pair=shape_and_targets(),
    engine=st.sampled_from(["td", "swift"]),
)
def test_batch_equals_sequential_on_random_shapes(pair, engine):
    program, targets = pair
    assert_batch_matches_sequential(program, targets, engine)


@FUZZ_SETTINGS
@given(program=programs(), data=st.data())
def test_batch_equals_sequential_on_random_programs(program, data):
    names = sorted(program.names())
    targets = data.draw(
        st.lists(st.sampled_from(names), min_size=1, max_size=4)
    )
    assert_batch_matches_sequential(program, targets, "swift")
