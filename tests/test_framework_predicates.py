"""Unit tests for the predicate machinery (repro.framework.predicates)."""

from repro.framework.predicates import FALSE, TRUE, Conjunction, conjoin
from repro.typestate.bu_analysis import HaveAtom, NotHaveAtom
from repro.typestate.states import AbstractState


def _state(*must):
    return AbstractState("h", "closed", frozenset(must))


def test_true_is_empty_conjunction():
    assert TRUE.is_true
    assert TRUE.satisfied_by(_state())
    assert TRUE.satisfied_by(_state("a", "b"))


def test_false_satisfies_nothing():
    assert FALSE.is_false
    assert not FALSE.satisfied_by(_state())


def test_atom_satisfaction():
    p = Conjunction.of([HaveAtom("f")])
    assert p.satisfied_by(_state("f"))
    assert not p.satisfied_by(_state("g"))
    q = Conjunction.of([NotHaveAtom("f")])
    assert q.satisfied_by(_state("g"))
    assert not q.satisfied_by(_state("f"))


def test_contradiction_detected_on_build():
    assert Conjunction.of([HaveAtom("f"), NotHaveAtom("f")]) is FALSE


def test_contradiction_detected_on_conjoin():
    p = Conjunction.of([HaveAtom("f")])
    assert p.conjoin(NotHaveAtom("f")) is FALSE
    assert p.conjoin(HaveAtom("g")) is not FALSE


def test_conjoin_idempotent():
    p = Conjunction.of([HaveAtom("f")])
    assert p.conjoin(HaveAtom("f")) is p


def test_conjoin_pred():
    p = Conjunction.of([HaveAtom("f")])
    q = Conjunction.of([NotHaveAtom("g")])
    both = p.conjoin_pred(q)
    assert both.satisfied_by(_state("f"))
    assert not both.satisfied_by(_state("f", "g"))
    assert p.conjoin_pred(FALSE) is FALSE


def test_conjoin_helper():
    p = Conjunction.of([HaveAtom("f")])
    assert conjoin(p, FALSE) is FALSE
    assert conjoin(FALSE, p) is FALSE
    assert conjoin(p, TRUE) == p


def test_entailment_is_atom_subset():
    strong = Conjunction.of([HaveAtom("f"), NotHaveAtom("g")])
    weak = Conjunction.of([HaveAtom("f")])
    assert strong.entails(weak)
    assert not weak.entails(strong)
    assert strong.entails(TRUE)
    assert not strong.entails(FALSE)


def test_conjunction_hashable_and_canonical():
    p1 = Conjunction.of([HaveAtom("f"), HaveAtom("g")])
    p2 = Conjunction.of([HaveAtom("g"), HaveAtom("f")])
    assert p1 == p2
    assert hash(p1) == hash(p2)


def test_str_forms():
    assert str(TRUE) == "true"
    p = Conjunction.of([HaveAtom("f"), NotHaveAtom("g")])
    assert "have(f)" in str(p) and "notHave(g)" in str(p)
