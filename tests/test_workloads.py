"""Tests for the micro-workload generators."""

import pytest

from repro.bench.workloads import (
    case_bomb,
    deep_chain,
    hub_flood,
    scalability_series,
    wide_dispatch,
)
from repro.framework.bottomup import BottomUpEngine
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.ir.validate import validate_program
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD


@pytest.mark.parametrize(
    "program",
    [hub_flood(6), deep_chain(4), wide_dispatch(3), case_bomb(3)],
    ids=["hub_flood", "deep_chain", "wide_dispatch", "case_bomb"],
)
def test_workloads_are_valid_and_analyzable(program):
    validate_program(program)
    assert program.reachable() == frozenset(program.names())
    td = SimpleTypestateTD(FILE_PROPERTY)
    bu = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    td_result = TopDownEngine(program, td).run(initial)
    swift_result = SwiftEngine(program, td, bu, k=2, theta=2).run(initial)
    assert swift_result.exit_states() == td_result.exit_states()


def test_hub_flood_structure():
    program = hub_flood(10, n_resources=3)
    assert "hub" in program
    callers = [p for p in program if p.startswith("caller")]
    assert len(callers) == 10
    assert len(program.allocation_sites()) == 3


def test_deep_chain_depth():
    program = deep_chain(5)
    from repro.callgraph import build_call_graph

    graph = build_call_graph(program)
    assert graph.depth_of("level4") == 5


def test_wide_dispatch_choice_width():
    program = wide_dispatch(4)
    targets = {c.proc for c in program["main"].calls()}
    assert len(targets) == 4


def test_case_bomb_explodes_without_pruning():
    """Unpruned relation counts grow exponentially with chain length —
    exactly 2^n in the simple domain (each invoke splits have/notHave;
    the read/write branches deduplicate extensionally)."""
    bu = SimpleTypestateBU(FILE_PROPERTY)
    for n in (2, 3, 5):
        result = BottomUpEngine(case_bomb(n), bu).analyze(["bomb"])
        assert result.summary("bomb").case_count() == 2**n


def test_case_bomb_tamed_by_pruning():
    from collections import Counter
    from repro.framework.pruning import FrequencyPruner
    from repro.typestate.states import AbstractState

    bu = SimpleTypestateBU(FILE_PROPERTY)
    incoming = {
        "bomb": Counter({AbstractState("h0", "closed", frozenset({"f"})): 3})
    }
    pruner = FrequencyPruner(bu, theta=1, incoming=incoming)
    result = BottomUpEngine(case_bomb(5), bu, pruner=pruner).analyze(["bomb"])
    assert result.summary("bomb").case_count() <= 1


def test_generator_validation():
    with pytest.raises(ValueError):
        deep_chain(0)
    with pytest.raises(ValueError):
        wide_dispatch(1)
    with pytest.raises(ValueError):
        case_bomb(0)


def test_scalability_series_shapes():
    sizes = []
    for size, program in scalability_series([4, 8]):
        sizes.append(size)
        validate_program(program)
    assert sizes == [4, 8]
