"""Kernel ≡ object equivalence across the whole engine × domain matrix.

The compiled kernels (DESIGN §11) are *wall-clock-only*: for every
registered engine, every domain, and every scheduling policy, a kernel
run must produce the same verdict, the same summary counts, and the
same deterministic work counters as the object run with the same
policy.  Baselines are policy-matched — only ``kernel`` varies within a
comparison — because SWIFT/concurrent counters legitimately depend on
propagation order, which schedulers and batching change.

A hypothesis sweep extends the fixed corpus with random programs.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.framework.kernel import numpy_available
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY

from tests.helpers import all_small_programs
from tests.test_property_based import ENGINE_SETTINGS, programs

ENGINES = ["td", "bu", "swift", "concurrent"]
DOMAINS = ["simple", "full"]
# (scheduler, batched) policy pairs: the default order and the pairing
# the batching layer is designed for.
POLICIES = [("lifo", False), ("scc-topo", True)]
KERNELS = ["bitset"] + (["numpy"] if numpy_available() else [])


def _work_signature(report):
    m = report.result.metrics
    return (
        report.errors,
        report.td_summaries,
        report.bu_summaries,
        report.timed_out,
        m.transfers,
        m.rtransfers,
        m.compositions,
        m.propagations,
        m.td_summary_reuses,
        m.relations_created,
        m.summary_instantiations,
        m.total_work,
    )


def _run(program, engine, domain, scheduler, batched, kernel):
    return run_typestate(
        program,
        FILE_PROPERTY,
        engine=engine,
        domain=domain,
        scheduler=scheduler,
        batched=batched,
        kernel=kernel,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("domain", DOMAINS)
def test_kernels_match_object_engines(engine, domain):
    for program in all_small_programs():
        for scheduler, batched in POLICIES:
            baseline = _work_signature(
                _run(program, engine, domain, scheduler, batched, "object")
            )
            for kernel in KERNELS:
                kernel_sig = _work_signature(
                    _run(program, engine, domain, scheduler, batched, kernel)
                )
                assert kernel_sig == baseline, (
                    f"{engine}/{domain}/{scheduler}"
                    f"{'+batched' if batched else ''} kernel={kernel}"
                )


@ENGINE_SETTINGS
@given(program=programs())
def test_bitset_td_matches_object_on_random_programs(program):
    baseline = _work_signature(
        _run(program, "td", "simple", "lifo", False, "object")
    )
    assert (
        _work_signature(_run(program, "td", "simple", "lifo", False, "bitset"))
        == baseline
    )


@ENGINE_SETTINGS
@given(program=programs())
def test_bitset_swift_matches_object_on_random_programs(program):
    baseline = _work_signature(
        _run(program, "swift", "full", "lifo", False, "object")
    )
    assert (
        _work_signature(_run(program, "swift", "full", "lifo", False, "bitset"))
        == baseline
    )
