"""Hypothesis property tests for the full (four-component) domain.

The exhaustive condition checks in test_typestate_full.py cover tiny
universes; these tests sample much larger ones — more variables, field
paths, richer may-alias site sets — where exhaustive enumeration is
infeasible.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.ir.commands import Assign, FieldLoad, FieldStore, Invoke, New, Skip
from repro.typestate.full import (
    FullAbstractState,
    FullTypestateBU,
    FullTypestateTD,
)
from repro.typestate.full.oracle import PointsToOracle
from repro.typestate.properties import FILE_PROPERTY

VARS = ["a", "b", "c", "d"]
FIELDS = ["f", "g"]
SITES = ["h1", "h2", "h3"]

paths = st.one_of(
    st.sampled_from(VARS),
    st.builds(lambda v, f: f"{v}.{f}", st.sampled_from(VARS), st.sampled_from(FIELDS)),
    st.builds(
        lambda v, f, g: f"{v}.{f}.{g}",
        st.sampled_from(VARS),
        st.sampled_from(FIELDS),
        st.sampled_from(FIELDS),
    ),
)


@st.composite
def full_states(draw):
    site = draw(st.sampled_from(SITES + ["<boot>"]))
    ts = draw(st.sampled_from(FILE_PROPERTY.states))
    must = draw(st.sets(paths, max_size=3))
    mustnot = draw(st.sets(paths, max_size=3)) - must
    return FullAbstractState(site, ts, frozenset(must), frozenset(mustnot))


prims = st.one_of(
    st.just(Skip()),
    st.builds(New, st.sampled_from(VARS), st.sampled_from(SITES)),
    st.builds(Assign, st.sampled_from(VARS), st.sampled_from(VARS)),
    st.builds(Invoke, st.sampled_from(VARS), st.sampled_from(["open", "close", "read", "noop"])),
    st.builds(
        FieldLoad, st.sampled_from(VARS), st.sampled_from(VARS), st.sampled_from(FIELDS)
    ),
    st.builds(
        FieldStore, st.sampled_from(VARS), st.sampled_from(FIELDS), st.sampled_from(VARS)
    ),
)


@st.composite
def oracles(draw):
    mapping = {
        v: frozenset(draw(st.sets(st.sampled_from(SITES), max_size=3)))
        for v in VARS
    }
    return PointsToOracle(mapping)


FULL_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FULL_SETTINGS
@given(oracle=oracles(), cmd=prims, sigma=full_states())
def test_full_c1_pointwise(oracle, cmd, sigma):
    """C1 at id#: applying rtrans(c)(id#) equals trans(c), pointwise."""
    td = FullTypestateTD(FILE_PROPERTY, oracle, variables=frozenset(VARS))
    bu = FullTypestateBU(FILE_PROPERTY, oracle, variables=frozenset(VARS))
    via_bu = set()
    for r in bu.rtransfer(cmd, bu.identity()):
        via_bu.update(bu.apply(r, sigma))
    assert frozenset(via_bu) == td.transfer(cmd, sigma)


@FULL_SETTINGS
@given(
    oracle=oracles(),
    cmds=st.lists(prims, min_size=1, max_size=4),
    sigma=full_states(),
)
def test_full_c1_c2_along_chains(oracle, cmds, sigma):
    """Relational composition along random command chains equals the
    top-down semantics — conditions C1 and C2 combined."""
    td = FullTypestateTD(FILE_PROPERTY, oracle, variables=frozenset(VARS))
    bu = FullTypestateBU(FILE_PROPERTY, oracle, variables=frozenset(VARS))
    relations = {bu.identity()}
    for cmd in cmds:
        step = set()
        for r in relations:
            step.update(bu.rtransfer(cmd, r))
        relations = step
    via_relations = set()
    for r in relations:
        via_relations.update(bu.apply(r, sigma))
    states = {sigma}
    for cmd in cmds:
        states = set(td.transfer_set(cmd, states))
    assert frozenset(via_relations) == frozenset(states)


@FULL_SETTINGS
@given(
    oracle=oracles(),
    chain1=st.lists(prims, min_size=1, max_size=2),
    chain2=st.lists(prims, min_size=1, max_size=2),
    sigma=full_states(),
)
def test_full_rcompose_equals_sequential(oracle, chain1, chain2, sigma):
    """rcomp of chain relations equals running both chains in sequence
    (C2 over analysis-generated relations)."""
    td = FullTypestateTD(FILE_PROPERTY, oracle, variables=frozenset(VARS))
    bu = FullTypestateBU(FILE_PROPERTY, oracle, variables=frozenset(VARS))

    def relations_of(cmds):
        rels = {bu.identity()}
        for cmd in cmds:
            step = set()
            for r in rels:
                step.update(bu.rtransfer(cmd, r))
            rels = step
        return rels

    rels1 = relations_of(chain1)
    rels2 = relations_of(chain2)
    composed_out = set()
    for r1 in rels1:
        for r2 in rels2:
            for rc in bu.rcompose(r1, r2):
                composed_out.update(bu.apply(rc, sigma))
    states = {sigma}
    for cmd in chain1 + chain2:
        states = set(td.transfer_set(cmd, states))
    assert frozenset(composed_out) == frozenset(states)


@FULL_SETTINGS
@given(oracle=oracles(), cmd=prims, sigma=full_states())
def test_full_states_keep_invariant(oracle, cmd, sigma):
    """Every state any transfer produces keeps must ∩ must-not = ∅
    (the constructor would raise otherwise — this drives it broadly)."""
    td = FullTypestateTD(FILE_PROPERTY, oracle, variables=frozenset(VARS))
    for out in td.transfer(cmd, sigma):
        assert not (out.must & out.mustnot)


@FULL_SETTINGS
@given(oracle=oracles(), cmd=prims, sigma=full_states())
def test_full_pre_image_sound_and_exact(oracle, cmd, sigma):
    """pre_image agrees with apply for relations produced by rtrans.

    ``pre_image(r, p)`` is the weakest precondition of ``p`` over the
    *outputs* of ``r``: sigma satisfies it iff applying ``r`` to sigma
    yields some state satisfying ``p``.  (Checking ``bool(apply(...))``
    instead is wrong for self-overwriting commands like ``a = a.f``,
    whose outputs can never satisfy parts of the domain predicate.)
    """
    bu = FullTypestateBU(FILE_PROPERTY, oracle, variables=frozenset(VARS))
    for r in bu.rtransfer(cmd, bu.identity()):
        pred = bu.domain_predicate(r)
        pre = bu.pre_image(r, pred)
        claimed = any(bu.pred_satisfied(q, sigma) for q in pre)
        actual = any(
            bu.pred_satisfied(pred, out) for out in bu.apply(r, sigma)
        )
        assert claimed == actual
