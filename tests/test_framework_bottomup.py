"""Tests for the bottom-up engine: completeness without pruning
(coincidence with the top-down semantics) and pruned behaviour.
"""

from collections import Counter

import pytest

from repro.framework.bottomup import BottomUpEngine
from repro.framework.denotational import DenotationalInterpreter
from repro.framework.pruning import FrequencyPruner, NoPruner
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_small_programs, figure1_program, section24_program


def _apply_summary(bu_analysis, summary, states):
    out = set()
    for sigma in states:
        assert sigma not in summary.ignored
        for r in summary.relations:
            out.update(bu_analysis.apply(r, sigma))
    return frozenset(out)


@pytest.mark.parametrize("program", all_small_programs())
def test_coincidence_without_pruning(program):
    """Theorem 3.1 with Σ' = ∅ (NoPruner): for every procedure, applying
    its bottom-up summary to any incoming state set equals the top-down
    semantics of its body."""
    td = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    engine = BottomUpEngine(program, bu_analysis, pruner=NoPruner(bu_analysis))
    result = engine.analyze()
    oracle = DenotationalInterpreter(program, td)
    initial = frozenset([bootstrap_state(FILE_PROPERTY)])
    for proc in program.reachable():
        summary = result.summary(proc)
        assert summary.ignored.is_empty()
        expected = oracle.eval_proc(proc, initial)
        actual = _apply_summary(bu_analysis, summary, initial)
        assert actual == expected, f"mismatch for {proc}"


def test_figure1_bu_summaries_for_foo():
    """foo gets exactly the two transformer cases (have/notHave f) —
    the Figure 2 domain's analogue of B1-B4 collapsing to two."""
    program = figure1_program()
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    result = BottomUpEngine(program, bu_analysis).analyze()
    foo = result.summary("foo")
    assert foo.case_count() == 2
    preds = {str(r.pred) for r in foo.relations}
    assert preds == {"have(f)", "notHave(f)"}


def test_pruned_run_theta1_keeps_dominating_case():
    """With the incoming multiset dominated by have(f) states, theta=1
    must keep the strong-update case and push notHave(f) into Sigma."""
    program = figure1_program()
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    from repro.typestate.states import AbstractState

    incoming = {
        "foo": Counter(
            {
                AbstractState("h1", "closed", frozenset({"f"})): 2,
                AbstractState("h2", "closed", frozenset({"f"})): 1,
            }
        )
    }
    pruner = FrequencyPruner(bu_analysis, theta=1, incoming=incoming)
    result = BottomUpEngine(program, bu_analysis, pruner=pruner).analyze(["foo"])
    foo = result.summary("foo")
    assert foo.case_count() == 1
    (kept,) = foo.relations
    assert str(kept.pred) == "have(f)"
    # The dropped case's domain must be recorded in Sigma.
    dropped_state = AbstractState("h1", "closed", frozenset())
    assert dropped_state in foo.ignored
    kept_state = AbstractState("h1", "closed", frozenset({"f"}))
    assert kept_state not in foo.ignored


def test_pruned_summaries_sound_on_unpruned_states():
    """Coincidence (Theorem 3.1): on states outside Sigma, the pruned
    summary agrees exactly with the top-down semantics."""
    for program in all_small_programs():
        td = SimpleTypestateTD(FILE_PROPERTY)
        bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
        pruner = FrequencyPruner(bu_analysis, theta=1, incoming={})
        result = BottomUpEngine(program, bu_analysis, pruner=pruner).analyze()
        oracle = DenotationalInterpreter(program, td)
        initial = bootstrap_state(FILE_PROPERTY)
        for proc in program.reachable():
            summary = result.summary(proc)
            if initial in summary.ignored:
                continue  # pruned away: SWIFT would fall back to top-down
            expected = oracle.eval_proc(proc, frozenset([initial]))
            actual = _apply_summary(bu_analysis, summary, [initial])
            assert actual == expected, f"mismatch for {proc} in {program}"


def test_budget_marks_timeout():
    from repro.framework.metrics import Budget

    program = section24_program()
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    engine = BottomUpEngine(program, bu_analysis, budget=Budget(max_work=3))
    result = engine.analyze()
    assert result.timed_out


def test_apply_to_rejects_pruned_states():
    from repro.typestate.states import AbstractState

    program = figure1_program()
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    incoming = {"foo": Counter({AbstractState("h1", "closed", frozenset({"f"})): 3})}
    pruner = FrequencyPruner(bu_analysis, theta=1, incoming=incoming)
    result = BottomUpEngine(program, bu_analysis, pruner=pruner).analyze(["foo"])
    pruned_state = AbstractState("h1", "closed", frozenset())
    with pytest.raises(ValueError):
        result.apply_to("foo", [pruned_state])
