"""Worklist scheduler policies: same results, locked default counters.

The counters-vs-wall-clock rule (DESIGN §4) extended to scheduling:
switching the worklist policy may change how much work the fixpoint
takes, but never the reported results.  Property-tested over random
programs: top-down tables are identical under every policy, SWIFT's
error reports and main-exit states coincide, and the ``lifo``/``fifo``
policies reproduce the legacy ``order=`` code paths counter-for-counter
(the CI baseline byte-compare locks the default end to end).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.framework.bottomup import BottomUpEngine
from repro.framework.pruning import NoPruner
from repro.framework.scheduling import make_scheduler, scheduler_names
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.ir.cfg import ProgramPoint
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.client import find_errors
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_small_programs, diamond_program
from tests.test_property_based import programs

POLICIES = scheduler_names()

SCHEDULE_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _counters(metrics):
    return (
        metrics.transfers,
        metrics.rtransfers,
        metrics.compositions,
        metrics.propagations,
        metrics.summary_instantiations,
    )


# -- policy equivalence (property-based) --------------------------------------------
@SCHEDULE_SETTINGS
@given(program=programs())
def test_td_tables_identical_across_policies(program):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    results = {
        policy: TopDownEngine(program, td_analysis, scheduler=policy).run(initial)
        for policy in POLICIES
    }
    base = results["lifo"]
    for result in results.values():
        assert result.td == base.td
        assert result.exit_states() == base.exit_states()
        assert find_errors(result) == find_errors(base)


@SCHEDULE_SETTINGS
@given(program=programs(), k=st.integers(1, 3), theta=st.integers(1, 2))
def test_swift_reports_identical_across_policies(program, k, theta):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    results = {
        policy: SwiftEngine(
            program, td_analysis, bu_analysis, k=k, theta=theta, scheduler=policy
        ).run(initial)
        for policy in POLICIES
    }
    base = results["lifo"]
    base_sites = frozenset(site for (_, site) in find_errors(base))
    for result in results.values():
        # Trigger timing (hence the tables' context sets) may differ,
        # but what is reported never does.
        assert result.exit_states() == base.exit_states()
        sites = frozenset(site for (_, site) in find_errors(result))
        assert sites == base_sites


# -- the full policy x batching matrix (property-based) -----------------------------
@SCHEDULE_SETTINGS
@given(program=programs(), batch_size=st.sampled_from([1, 3, 64]))
def test_td_matrix_policies_by_batching(program, batch_size):
    """Identical tables AND identical raw work counters across every
    scheduler policy crossed with batched on/off: for pure top-down
    tabulation every (point, entry, state) item is processed exactly
    once whatever the order, so even the work counters are
    order/batching-invariant.  Only cache traffic may move."""
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    base = TopDownEngine(program, td_analysis).run(initial)
    for policy in POLICIES:
        for batched in (False, True):
            result = TopDownEngine(
                program,
                td_analysis,
                scheduler=policy,
                batched=batched,
                batch_size=batch_size,
            ).run(initial)
            assert result.td == base.td
            assert find_errors(result) == find_errors(base)
            assert _counters(result.metrics) == _counters(base.metrics)


@SCHEDULE_SETTINGS
@given(program=programs(), k=st.integers(1, 3))
def test_swift_matrix_policies_by_batching(program, k):
    """SWIFT trigger timing (hence counters) is policy-dependent, but
    the reports never are — across the whole policy x batching grid."""
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    base = SwiftEngine(program, td_analysis, bu_analysis, k=k).run(initial)
    base_sites = frozenset(site for (_, site) in find_errors(base))
    for policy in POLICIES:
        for batched in (False, True):
            result = SwiftEngine(
                program,
                td_analysis,
                bu_analysis,
                k=k,
                scheduler=policy,
                batched=batched,
            ).run(initial)
            assert result.exit_states() == base.exit_states()
            sites = frozenset(site for (_, site) in find_errors(result))
            assert sites == base_sites


@SCHEDULE_SETTINGS
@given(program=programs())
def test_bu_summary_maps_identical_batched(program):
    """Bottom-up summary maps and raw counters are batching-invariant
    (the bottom-up pass has no worklist, so there is no policy axis)."""
    runs = []
    for batched in (False, True):
        bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
        engine = BottomUpEngine(
            program, bu_analysis, pruner=NoPruner(bu_analysis), batched=batched
        )
        runs.append(engine.analyze())
    plain, batched = runs
    assert batched.summaries == plain.summaries
    assert (
        batched.metrics.rtransfers,
        batched.metrics.compositions,
        batched.metrics.relations_created,
    ) == (
        plain.metrics.rtransfers,
        plain.metrics.compositions,
        plain.metrics.relations_created,
    )


# -- default counters are the legacy ones -------------------------------------------
@pytest.mark.parametrize("order", ["lifo", "fifo"])
def test_scheduler_reproduces_legacy_order_counters(order):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    for program in all_small_programs():
        legacy = TopDownEngine(program, td_analysis, order=order).run(initial)
        new = TopDownEngine(program, td_analysis, scheduler=order).run(initial)
        assert new.td == legacy.td
        assert _counters(new.metrics) == _counters(legacy.metrics)


def test_default_config_counters_are_lifo():
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    for program in all_small_programs():
        default = TopDownEngine(program, td_analysis).run(initial)
        explicit = TopDownEngine(program, td_analysis, scheduler="lifo").run(initial)
        assert _counters(default.metrics) == _counters(explicit.metrics)


def test_callee_depth_is_deterministic():
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    for program in all_small_programs():
        first = TopDownEngine(program, td_analysis, scheduler="callee-depth").run(
            initial
        )
        second = TopDownEngine(program, td_analysis, scheduler="callee-depth").run(
            initial
        )
        assert first.td == second.td
        assert _counters(first.metrics) == _counters(second.metrics)


# -- the scheduler itself -----------------------------------------------------------
def test_callee_depth_pops_deepest_first_with_fifo_ties():
    program = diamond_program()  # main -> left/right -> helper
    scheduler = make_scheduler("callee-depth", program)
    at_main = (ProgramPoint("main", 0), None, "s1")
    at_helper_a = (ProgramPoint("helper", 0), None, "s2")
    at_left = (ProgramPoint("left", 0), None, "s3")
    at_helper_b = (ProgramPoint("helper", 1), None, "s4")
    for item in (at_main, at_helper_a, at_left, at_helper_b):
        scheduler.push(item)
    popped = [scheduler.pop() for _ in range(4)]
    assert popped == [at_helper_a, at_helper_b, at_left, at_main]
    assert not scheduler


def test_unknown_policy_raises_listing_choices():
    program = diamond_program()
    with pytest.raises(ValueError) as err:
        make_scheduler("random-walk", program)
    message = str(err.value)
    for name in POLICIES:
        assert name in message
    with pytest.raises(ValueError):
        TopDownEngine(
            program, SimpleTypestateTD(FILE_PROPERTY), scheduler="random-walk"
        )
