"""Batched (set-at-a-time) frontier propagation — DESIGN §10.

The batched inner loops must be *observationally identical* to the
unbatched ones: same tables, same summaries, same raw work counters
(transfers, propagations, rtransfers, compositions, relations
created).  Only cache-traffic counters and wall clock may move.  The
budget semantics are locked too: the deterministic counter checks stay
per item (a work/relation timeout fires at exactly the same counter
values), while the wall-clock deadline is checked once per drained
batch.
"""

import pytest

from repro.framework.bottomup import BottomUpEngine
from repro.framework.metrics import (
    KIND_SECONDS,
    KIND_WORK,
    Budget,
    BudgetExceededError,
)
from repro.framework.pruning import NoPruner
from repro.framework.topdown import TopDownEngine, sorted_states, state_sort_key
from repro.framework.tracing import RingSink
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState, bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_small_programs, figure1_program

INITIAL = [bootstrap_state(FILE_PROPERTY)]


def _td(program, **kwargs):
    return TopDownEngine(
        program, SimpleTypestateTD(FILE_PROPERTY), **kwargs
    ).run(INITIAL)


def _raw_td_counters(metrics):
    return (
        metrics.transfers,
        metrics.propagations,
        metrics.summary_instantiations,
    )


# -- result and counter identity -----------------------------------------------------
@pytest.mark.parametrize("batch_size", [1, 2, 64])
def test_batched_td_tables_and_raw_counters_identical(batch_size):
    for program in all_small_programs():
        plain = _td(program)
        batched = _td(program, batched=True, batch_size=batch_size)
        assert batched.td == plain.td
        assert batched.exit_states() == plain.exit_states()
        assert _raw_td_counters(batched.metrics) == _raw_td_counters(plain.metrics)
        assert batched.metrics.frontier_batches > 0
        assert plain.metrics.frontier_batches == 0


@pytest.mark.parametrize("threshold", [0, 1, 4, 10_000])
def test_batch_min_frontier_locks_tables_and_raw_counters(threshold):
    """The small-frontier fast path is a pure wall-clock knob.

    Every threshold — from 0 (always the set machinery) to effectively
    infinite (always the per-item handlers) — must produce the same
    tables and raw counters.  ``frontier_batches`` is batch *traffic*
    (like the cache counters) and free to move with the threshold: the
    two application paths re-enqueue in different groupings, so
    frontiers accumulate differently.
    """
    for program in all_small_programs():
        plain = _td(program)
        gated = _td(program, batched=True, batch_min_frontier=threshold)
        assert gated.td == plain.td
        assert gated.exit_states() == plain.exit_states()
        assert _raw_td_counters(gated.metrics) == _raw_td_counters(plain.metrics)
        assert gated.metrics.frontier_batches > 0


def test_batched_td_identical_without_caches():
    # The inline (cache-less) batched path must agree too.
    for program in all_small_programs():
        plain = _td(program, enable_caches=False)
        batched = _td(program, enable_caches=False, batched=True)
        assert batched.td == plain.td
        assert _raw_td_counters(batched.metrics) == _raw_td_counters(plain.metrics)
        assert batched.metrics.batch_cache_hits == 0
        assert batched.metrics.batch_cache_misses == 0


def test_batched_bu_summaries_and_raw_counters_identical():
    for program in all_small_programs():
        runs = []
        for batched in (False, True):
            bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
            engine = BottomUpEngine(
                program, bu_analysis, pruner=NoPruner(bu_analysis), batched=batched
            )
            runs.append(engine.analyze())
        plain, batched = runs
        assert batched.summaries == plain.summaries
        assert batched.metrics.rtransfers == plain.metrics.rtransfers
        assert batched.metrics.compositions == plain.metrics.compositions
        assert (
            batched.metrics.relations_created == plain.metrics.relations_created
        )


def test_batch_size_validated():
    program = figure1_program()
    with pytest.raises(ValueError):
        TopDownEngine(
            program, SimpleTypestateTD(FILE_PROPERTY), batched=True, batch_size=0
        )


# -- budget semantics (satellite: clock per batch, counters per item) ---------------
def _kind_seen(program, budget, **kwargs):
    sink = RingSink()
    result = _td(program, budget=budget, sink=sink, **kwargs)
    assert result.timed_out
    events = [e for e in sink.events if e.kind == "budget_exceeded"]
    assert len(events) == 1
    return events[0].data


def test_work_budget_timeout_identical_under_batching():
    """The counter half of the budget check stays per *item*: the same
    work budgets time out batched and unbatched, with the same kind and
    limit, and the overrun stays bounded per item (within one item's
    worth of counter bumps, never a whole batch)."""
    program = figure1_program()
    for max_work in (1, 5, 20):
        plain = _kind_seen(program, Budget(max_work=max_work))
        batched = _kind_seen(
            program, Budget(max_work=max_work), batched=True, batch_size=4
        )
        assert plain["what"] == batched["what"] == KIND_WORK
        assert plain["limit"] == batched["limit"]
        # Not exact equality: within one frontier the batched loop
        # walks edge-by-edge where the unbatched one walks item-by-item,
        # so the crossing is observed a few bumps apart — but never a
        # whole batch later.
        assert abs(plain["spent"] - batched["spent"]) <= 4
        assert plain["spent"] > max_work
        assert batched["spent"] > max_work


def test_clock_budget_kind_preserved_under_batching():
    program = figure1_program()
    for kwargs in ({}, {"batched": True}):
        payload = _kind_seen(program, Budget(max_seconds=0.0), **kwargs)
        assert payload["what"] == KIND_SECONDS
    exc = BudgetExceededError(KIND_SECONDS, 1.0, 0.0)
    assert exc.kind == KIND_SECONDS  # the alias the harness matches on


class _CountingBudget(Budget):
    """Counts deadline checks; never fires."""

    def check_clock(self):
        self.clock_checks = getattr(self, "clock_checks", 0) + 1
        super().check_clock()


def test_clock_checked_once_per_drained_batch():
    program = figure1_program()
    budget = _CountingBudget(max_seconds=3600.0)
    result = _td(program, budget=budget, batched=True, batch_size=4)
    assert not result.timed_out
    assert budget.clock_checks == result.metrics.frontier_batches


# -- the interned sort-key cache ----------------------------------------------------
def test_state_sort_key_matches_str_and_caches():
    sigma = bootstrap_state(FILE_PROPERTY)
    assert state_sort_key(sigma) == str(sigma)
    assert state_sort_key(sigma) is state_sort_key(sigma)  # served from cache


def test_sorted_states_orders_by_string_key():
    states = [
        AbstractState("h2", FILE_PROPERTY.initial, frozenset()),
        AbstractState("h1", FILE_PROPERTY.initial, frozenset()),
    ]
    assert sorted_states(states) == sorted(states, key=str)
    assert sorted_states(frozenset(states)) == sorted(states, key=str)
