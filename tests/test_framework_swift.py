"""Tests for the SWIFT hybrid engine (Algorithm 1).

The headline correctness property (Section 2.4 / Theorem 3.1): SWIFT is
equivalent to the conventional top-down analysis — same abstract states
at every caller-side program point and at every procedure exit that
both engines analyzed, and identical states at main's exit — for every
choice of the thresholds ``k`` and ``theta``.
"""

import pytest

from repro.framework.denotational import DenotationalInterpreter
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import (
    all_small_programs,
    diamond_program,
    figure1_program,
    section24_program,
)


def _run_both(program, k, theta):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    td_result = TopDownEngine(program, td_analysis).run(initial)
    swift_result = SwiftEngine(
        program, td_analysis, bu_analysis, k=k, theta=theta
    ).run(initial)
    return td_result, swift_result


@pytest.mark.parametrize("program", all_small_programs())
@pytest.mark.parametrize("k,theta", [(1, 1), (1, 2), (2, 1), (2, 3), (5, 1)])
def test_swift_equivalent_to_td(program, k, theta):
    td_result, swift_result = _run_both(program, k, theta)
    # Same final states at main's exit.
    assert swift_result.exit_states() == td_result.exit_states()
    # At every program point SWIFT computes a subset of TD's states
    # (it may skip callee contexts whose effect came from a summary) …
    for point, pairs in swift_result.td.items():
        td_states = td_result.states_at(point)
        for (_, sigma) in pairs:
            assert sigma in td_states, f"spurious state {sigma} at {point}"
    # … and at every point of main the states match exactly.
    for point in swift_result.cfgs["main"].points:
        assert swift_result.states_at(point) == td_result.states_at(point)


@pytest.mark.parametrize("program", all_small_programs())
def test_swift_matches_denotational(program):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    oracle = DenotationalInterpreter(program, td_analysis).run(initial)
    swift_result = SwiftEngine(
        program, td_analysis, bu_analysis, k=1, theta=1
    ).run(initial)
    assert swift_result.exit_states() == oracle


def test_swift_triggers_bottom_up_on_figure1():
    """With k=2 the third incoming state of foo triggers run_bu
    (Section 2.3), and later calls reuse bottom-up summaries."""
    program = figure1_program()
    _, swift_result = _run_both(program, k=2, theta=2)
    assert "foo" in swift_result.bu
    assert swift_result.metrics.bu_triggers >= 1
    assert swift_result.metrics.summary_instantiations > 0


def test_swift_avoids_td_summaries():
    """SWIFT computes fewer top-down summaries for foo than TD
    (the paper's example: T4 and T5 are avoided)."""
    program = figure1_program()
    td_result, swift_result = _run_both(program, k=2, theta=2)
    assert swift_result.summary_count("foo") < td_result.summary_count("foo")


def test_swift_k_larger_than_contexts_degenerates_to_td():
    program = figure1_program()
    td_result, swift_result = _run_both(program, k=100, theta=1)
    assert not swift_result.bu
    assert swift_result.total_summaries() == td_result.total_summaries()


def test_section24_pruning_soundness_regression():
    """The Section 2.4 scenario: pruning must never produce results that
    differ from the conventional top-down analysis, even when several
    summaries apply to one state and some were pruned."""
    program = section24_program()
    for theta in (1, 2, 3):
        td_result, swift_result = _run_both(program, k=1, theta=theta)
        assert swift_result.exit_states() == td_result.exit_states(), (
            f"unsound result with theta={theta}"
        )


def test_swift_total_bu_relations_counts():
    program = figure1_program()
    _, swift_result = _run_both(program, k=2, theta=2)
    assert swift_result.total_bu_relations() == sum(
        s.case_count() for s in swift_result.bu.values()
    )
    assert swift_result.bu_procs() == frozenset(swift_result.bu)


def test_swift_rejects_bad_k():
    program = figure1_program()
    with pytest.raises(ValueError):
        SwiftEngine(
            program,
            SimpleTypestateTD(FILE_PROPERTY),
            SimpleTypestateBU(FILE_PROPERTY),
            k=0,
        )


def test_postpone_unseen_can_be_disabled():
    program = diamond_program()
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    eager = SwiftEngine(
        program, td_analysis, bu_analysis, k=1, theta=1, postpone_unseen=False
    ).run(initial)
    td_result = TopDownEngine(program, td_analysis).run(initial)
    assert eager.exit_states() == td_result.exit_states()


# -- hot-path optimizations are invisible (tables, bu map, counters) -----------------
import hypothesis.strategies as st
from hypothesis import given

from tests.test_property_based import ENGINE_SETTINGS, programs


@ENGINE_SETTINGS
@given(program=programs(), k=st.integers(1, 4), theta=st.integers(1, 3))
def test_optimized_swift_identical_to_unoptimized(program, k, theta):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    fast = SwiftEngine(program, td_analysis, bu_analysis, k=k, theta=theta).run(
        initial
    )
    slow = SwiftEngine(
        program,
        td_analysis,
        bu_analysis,
        k=k,
        theta=theta,
        enable_caches=False,
        indexed_summaries=False,
    ).run(initial)
    assert fast.td == slow.td
    assert dict(fast.entry_counts) == dict(slow.entry_counts)
    # ProcedureSummary implements value equality: the bu maps match.
    assert fast.bu == slow.bu
    assert fast.metrics.total_work == slow.metrics.total_work
    assert fast.metrics.bu_triggers == slow.metrics.bu_triggers
    assert fast.metrics.bu_postponements == slow.metrics.bu_postponements
    assert slow.metrics.cache_hits == 0 and slow.metrics.cache_misses == 0
