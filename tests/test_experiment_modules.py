"""Fast tests for the experiment modules (rendering, small runs, CSV).

The heavy full-suite runs live in benchmarks/; these tests exercise the
code paths cheaply: rendering with synthetic rows, single small
benchmarks, and the export helpers.
"""

from collections import Counter
from pathlib import Path

import pytest

from repro.bench import load_benchmark
from repro.experiments import figure5, table1, table2, table3, table4
from repro.experiments.export import write_csv
from repro.experiments.harness import EngineRun, run_engine


def _engine_run(**overrides):
    base = dict(
        benchmark="x",
        engine="td",
        k=None,
        theta=None,
        seconds=1.25,
        work=1000,
        td_summaries=100,
        bu_summaries=0,
        timed_out=False,
        error_sites=frozenset(),
    )
    base.update(overrides)
    return EngineRun(**base)


def test_table1_render_contains_all_names():
    stats = table1.run()
    text = table1.render(stats)
    for name in ("jpat-p", "avrora", "sablecc-j"):
        assert name in text


def test_table2_row_cells_with_timeouts():
    row = table2.Table2Row(
        "bench",
        _engine_run(timed_out=True),
        _engine_run(engine="bu", timed_out=True),
        _engine_run(engine="swift", work=10, td_summaries=5, bu_summaries=2),
    )
    cells = row.cells()
    assert cells[0] == "bench"
    assert cells[1] == "timeout" and cells[2] == "timeout"
    assert cells[4] == "-" and cells[5] == "-"  # no speedup vs timeouts
    text = table2.render([row])
    assert "timeout" in text


def test_table2_run_one_small_benchmark():
    row = table2.run_one(load_benchmark("jpat-p"))
    assert not row.swift.timed_out
    assert row.swift.error_sites == row.td.error_sites
    assert row.bu.bu_summaries > row.swift.bu_summaries


def test_run_engine_records_metrics():
    run = run_engine(load_benchmark("jpat-p"), "swift", k=2, theta=2)
    assert run.engine == "swift" and run.k == 2 and run.theta == 2
    assert run.work > 0 and run.seconds >= 0


def test_figure5_series_and_chart():
    series = figure5.run_one("toba-s")
    assert series.benchmark == "toba-s"
    assert series.td_counts == sorted(series.td_counts, reverse=True)
    chart = figure5._ascii_chart(series)
    assert "T" in chart and "toba-s" in chart
    rendered = figure5.render([series])
    assert "methods" in rendered


def test_figure5_stats_row():
    series = figure5.Figure5Series("x", [100, 10, 1], [5, 5, 0], k=5)
    row = series.stats_row("TD", series.td_counts)
    assert row[0] == "x/TD"
    assert row[2] == 100  # max
    assert row[5] == 2  # methods above k


def test_table3_row_cells():
    row = table3.Table3Row(k=5, seconds=1.0, work=10, td_summaries=3, bu_triggers=1)
    assert row.cells()[0] == "5"
    text = table3.render([row])
    assert "avrora" in text


def test_table4_runs_one_benchmark():
    row = table4.run_one("toba-s")
    assert len(row.runs) == 2
    theta1, theta2 = row.runs
    assert not theta1.timed_out and not theta2.timed_out
    cells = row.cells()
    assert cells[0] == "toba-s" and len(cells) == 5


def test_write_csv_round_trip(tmp_path):
    path = tmp_path / "out" / "data.csv"
    write_csv(path, ["a", "b"], [[1, "x"], [2, "y"]])
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,x" and lines[2] == "2,y"
