"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_program, main

GOOD_MINI = """
class Writer { method flush(f) { f.#open(); f.#close(); } }
main { w = new Writer(); r = new Writer(); w.flush(r); }
"""

BAD_MINI = """
class Writer { method close2(f) { f.#close(); f.#close(); } }
main { w = new Writer(); r = new Writer(); r.#open(); w.close2(r); }
"""

IR_TEXT = """
proc main {
  v = new h1;
  f = v;
  f.open();
  f.close();
}
"""


@pytest.fixture
def mini_file(tmp_path):
    def write(text, name="prog.mini"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


def test_load_program_minioo_and_ir(mini_file):
    program = load_program(mini_file(GOOD_MINI))
    assert "Writer$flush" in program
    program = load_program(mini_file(IR_TEXT, "prog.ir"))
    assert "main" in program


def test_verify_ok_exit_code(mini_file, capsys):
    code = main(["verify", mini_file(GOOD_MINI)])
    assert code == 0
    assert "ok" in capsys.readouterr().out


def test_verify_violation_exit_code(mini_file, capsys):
    code = main(["verify", mini_file(BAD_MINI)])
    assert code == 1
    out = capsys.readouterr().out
    assert "violation" in out and "error state" in out


def test_verify_budget_timeout(mini_file, capsys):
    code = main(["verify", mini_file(GOOD_MINI), "--budget", "2"])
    assert code == 2
    assert "budget" in capsys.readouterr().out


def test_verify_all_properties(mini_file, capsys):
    code = main(["verify", mini_file(GOOD_MINI), "--all-properties"])
    assert code == 0
    assert "File: ok" in capsys.readouterr().out


def test_verify_engine_choices(mini_file):
    for engine in ("td", "bu", "swift"):
        assert main(["verify", mini_file(GOOD_MINI), "--engine", engine]) == 0


def test_dump_ir(mini_file, capsys):
    assert main(["dump-ir", mini_file(GOOD_MINI)]) == 0
    out = capsys.readouterr().out
    assert "proc Writer$flush" in out
    assert "call Writer$flush" in out


def test_dot_call_graph_and_cfg(mini_file, capsys):
    path = mini_file(GOOD_MINI)
    assert main(["dot", path]) == 0
    assert "digraph callgraph" in capsys.readouterr().out
    assert main(["dot", path, "--proc", "main"]) == 0
    assert "digraph" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_bench_unknown_name(capsys):
    assert main(["bench", "not-a-benchmark"]) == 2
    assert "unknown benchmark" in capsys.readouterr().out


def test_analyze_cold_then_warm(mini_file, tmp_path, capsys):
    path = mini_file(GOOD_MINI)
    store = str(tmp_path / "store")
    assert main(["analyze", path, "--store", store]) == 0
    out = capsys.readouterr().out
    assert "cold start" in out and "snapshot:" in out and "ok" in out
    assert main(["analyze", path, "--store", store]) == 0
    out = capsys.readouterr().out
    assert "warm start" in out and "work=0" in out
    assert "hits=0" not in out  # the warm run must actually hit


def test_analyze_violation_and_timeout(mini_file, tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["analyze", mini_file(BAD_MINI), "--store", store]) == 1
    assert "violation" in capsys.readouterr().out
    code = main(["analyze", mini_file(GOOD_MINI), "--store", store, "--budget", "2"])
    assert code == 2
    out = capsys.readouterr().out
    assert "budget" in out and "not saved" in out


def test_store_stats_gc_clear(mini_file, tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["store", "stats", store]) == 0
    assert "no snapshots" in capsys.readouterr().out
    assert main(["analyze", mini_file(GOOD_MINI), "--store", store]) == 0
    capsys.readouterr()
    assert main(["store", "stats", store]) == 0
    out = capsys.readouterr().out
    # v2 config fingerprints carry the canonical registry domain name.
    assert "swift/typestate-full" in out and "property=File" in out
    assert "frontier=" in out  # the projection rides along with its parent
    # gc removes the snapshot AND its frontier projection.
    assert main(["store", "gc", store, "--keep", "0"]) == 0
    assert "removed 2" in capsys.readouterr().out
    assert main(["store", "clear", store]) == 0
    assert "removed 0" in capsys.readouterr().out


def test_trace_record_and_summarize(mini_file, tmp_path, capsys):
    out = str(tmp_path / "trace.jsonl")
    code = main(["trace", "record", mini_file(BAD_MINI), "--out", out])
    assert code == 0
    assert "recorded" in capsys.readouterr().out
    from repro.framework.tracing import read_jsonl

    events = read_jsonl(out)
    assert events and all(e.kind for e in events)
    assert main(["trace", "summarize", out]) == 0
    text = capsys.readouterr().out
    assert "propagations" in text and "main" in text


def test_trace_diff(mini_file, tmp_path, capsys):
    path = mini_file(BAD_MINI)
    a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    assert main(["trace", "record", path, "--out", a]) == 0
    assert main(["trace", "record", path, "--out", b]) == 0
    assert main(["trace", "diff", a, b]) == 0
    assert "agree" in capsys.readouterr().out
    # A different engine's trace differs (td has no bu events but also a
    # different propagation pattern is possible; budget-truncate instead).
    c = str(tmp_path / "c.jsonl")
    assert main(["trace", "record", path, "--out", c, "--budget", "3"]) == 0
    assert main(["trace", "diff", a, c]) == 1
    assert "differing" in capsys.readouterr().out


# -- value mode: widening knobs and unsupported-domain errors -------------------

LOOP_IR = """
proc main {
  v = new h1;
  v.open();
  loop {
    v.incr();
    v.le10();
  }
  v.close();
}
"""


def test_verify_interval_typestate_domain(mini_file, capsys):
    path = mini_file(LOOP_IR, "loop.ir")
    assert main(["verify", path, "--domain", "interval-typestate"]) == 0
    assert "ok" in capsys.readouterr().out


def test_verify_interval_fact_domain(mini_file, capsys):
    path = mini_file(LOOP_IR, "loop.ir")
    assert main(["verify", path, "--domain", "interval"]) == 0
    out = capsys.readouterr().out
    # The widened counter fact reaches main's exit.
    assert "fact(s) at main's exit" in out
    assert "v:[0,+inf]" in out


def test_verify_widening_knob_flags_accepted(mini_file, capsys):
    path = mini_file(LOOP_IR, "loop.ir")
    code = main(
        [
            "verify",
            path,
            "--domain",
            "interval-typestate",
            "--widening-delay",
            "0",
            "--descending-iters",
            "2",
        ]
    )
    assert code == 0
    assert "ok" in capsys.readouterr().out


def test_verify_compiled_kernel_refuses_infinite_domain(mini_file, capsys):
    path = mini_file(LOOP_IR, "loop.ir")
    code = main(
        ["verify", path, "--domain", "interval-typestate", "--kernel", "bitset"]
    )
    assert code == 2
    out = capsys.readouterr().out
    # Satellite (a): a typed config error naming the fallback, not a crash.
    assert "unsupported domain" in out
    assert "'object' kernel fallback" in out
    assert "typestate-simple" in out


def test_analyze_compiled_kernel_refuses_infinite_domain(
    mini_file, tmp_path, capsys
):
    path = mini_file(LOOP_IR, "loop.ir")
    store = str(tmp_path / "store")
    code = main(
        [
            "analyze",
            path,
            "--store",
            store,
            "--domain",
            "interval-typestate",
            "--kernel",
            "numpy",
        ]
    )
    assert code == 2
    assert "unsupported domain" in capsys.readouterr().out


def test_analyze_widening_knobs_rekey_store(mini_file, tmp_path, capsys):
    path = mini_file(LOOP_IR, "loop.ir")
    store = str(tmp_path / "store")
    base = ["analyze", path, "--store", store, "--domain", "interval-typestate"]
    assert main(base) == 0
    assert "cold start" in capsys.readouterr().out
    assert main(base) == 0
    assert "warm start" in capsys.readouterr().out
    # A knob change is a new config fingerprint: cold again, never wrong.
    assert main(base + ["--widening-delay", "4"]) == 0
    assert "cold start" in capsys.readouterr().out
