"""Demand-driven queries: cones, trimmed warm starts, and the oracle.

The load-bearing property (DESIGN §13): the answer of
:func:`repro.query.run_query` at a target equals the whole-program
*reference* (top-down) verdict restricted to that target — for every
engine, domain, scheduler, and kernel — while the solve tabulates no
out-of-cone interior point once the store is warm.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workloads import hub_flood, scc_heavy, wide_fanout
from repro.framework.kernel import numpy_available
from repro.incremental import SummaryStore, analyze_with_store
from repro.ir.cfg import ControlFlowGraphs, ProgramPoint
from repro.ir.parser import parse_program
from repro.query import (
    QUERY_KINDS,
    QueryError,
    QueryTarget,
    UnknownTargetError,
    clear_query_cache,
    compute_cone,
    resolve_target,
    run_query,
)
from repro.service.daemon import AnalysisService
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY

from tests.test_property_based import programs

CHAIN = """
proc main { v = new h1; v.open(); call mid; v.close(); }
proc mid { call leaf; }
proc leaf { f = new h2; f.open(); f.close(); }
"""

#: main calls a/b; b is self-recursive; orphan is never called.
SHAPES = """
proc main { v = new h1; v.open(); call a; call b; v.close(); }
proc a { call b; }
proc b { choose { call b; } or { f = new h2; f.open(); f.read(); } }
proc orphan { g = new h3; g.open(); }
"""

KERNELS = ["object", "bitset"] + (["numpy"] if numpy_available() else [])


def reference_errors(program, target, domain="simple"):
    """Whole-program top-down findings restricted to ``target``."""
    report = run_typestate(program, FILE_PROPERTY, engine="td", domain=domain)
    return frozenset(
        (point, site) for point, site in report.errors if target.covers(point)
    )


# -- target resolution ------------------------------------------------------------------


def test_resolve_target_spellings():
    program = parse_program(CHAIN)
    cfgs = ControlFlowGraphs(program)
    assert resolve_target(program, "mid") == QueryTarget("mid")
    assert resolve_target(program, "mid:1", cfgs) == QueryTarget("mid", 1)
    assert resolve_target(program, QueryTarget("leaf")) == QueryTarget("leaf")
    point = ProgramPoint("leaf", 2)
    assert resolve_target(program, point) == QueryTarget("leaf", 2)
    # A point target covers exactly its point; a proc target, the proc.
    assert resolve_target(program, "mid:1").covers(ProgramPoint("mid", 1))
    assert not resolve_target(program, "mid:1").covers(ProgramPoint("mid", 0))
    assert resolve_target(program, "mid").covers(ProgramPoint("mid", 0))


def test_resolve_target_errors():
    program = parse_program(CHAIN)
    cfgs = ControlFlowGraphs(program)
    with pytest.raises(UnknownTargetError):
        resolve_target(program, "nosuch")
    with pytest.raises(UnknownTargetError):
        resolve_target(program, "mid:banana")
    with pytest.raises(UnknownTargetError):
        resolve_target(program, "mid:9999", cfgs)
    # UnknownTargetError is a QueryError is a ValueError.
    assert issubclass(UnknownTargetError, QueryError)
    assert issubclass(QueryError, ValueError)


# -- cone computation -------------------------------------------------------------------


def test_cone_is_callers_of_target():
    program = parse_program(CHAIN)
    cone = compute_cone(program, QueryTarget("mid"))
    assert cone.cone == frozenset({"main", "mid"})
    assert cone.frontier == frozenset({"leaf"})
    leaf = compute_cone(program, QueryTarget("leaf"))
    assert leaf.cone == frozenset({"main", "mid", "leaf"})
    assert leaf.frontier == frozenset()


def test_cone_includes_whole_recursive_scc():
    program = parse_program(SHAPES)
    cone = compute_cone(program, QueryTarget("b"))
    # b is its own SCC (self-loop); both callers reach it.
    assert cone.cone == frozenset({"main", "a", "b"})
    # scc_heavy clusters: every member of the target's SCC is in the cone.
    heavy = scc_heavy(24, seed=5)
    cluster = sorted(n for n in heavy.names() if n.startswith("c0_"))
    assert len(cluster) >= 2
    heavy_cone = compute_cone(heavy, QueryTarget(cluster[-1]))
    assert set(cluster) <= heavy_cone.cone


def test_cone_of_unreachable_proc_is_empty():
    program = parse_program(SHAPES)
    cone = compute_cone(program, QueryTarget("orphan"))
    assert cone.cone == frozenset()
    assert cone.size == 0


# -- run_query edge cases ---------------------------------------------------------------


def test_unreachable_target_answers_empty_for_free(tmp_path):
    program = parse_program(SHAPES)
    store = SummaryStore(tmp_path / "store")
    for kind in QUERY_KINDS:
        outcome = run_query(program, FILE_PROPERTY, store, "orphan", kind=kind)
        assert outcome.answer == frozenset()
        assert outcome.cone_size == 0
        assert outcome.total_work == 0


def test_bad_target_and_bad_kind_raise(tmp_path):
    program = parse_program(CHAIN)
    store = SummaryStore(tmp_path / "store")
    with pytest.raises(UnknownTargetError):
        run_query(program, FILE_PROPERTY, store, "nosuch")
    with pytest.raises(QueryError):
        run_query(program, FILE_PROPERTY, store, "mid", kind="vibes")
    with pytest.raises(ValueError):
        run_query(program, FILE_PROPERTY, store, "mid", engine="bu")
    with pytest.raises(ValueError):
        run_query(program, FILE_PROPERTY, store, "mid", domain="killgen")


def test_empty_store_falls_back_to_cold_cone_solve(tmp_path):
    program = hub_flood(6)
    store = SummaryStore(tmp_path / "store")  # never populated
    target = resolve_target(program, "caller3")
    outcome = run_query(program, FILE_PROPERTY, store, "caller3")
    assert outcome.cold
    assert outcome.answer == reference_errors(program, target)


# -- warm behavior ----------------------------------------------------------------------


def test_warm_query_skips_out_of_cone_interiors(tmp_path):
    program = wide_fanout(48, seed=3)
    store = SummaryStore(tmp_path / "store")
    clear_query_cache()
    whole = analyze_with_store(
        program, FILE_PROPERTY, store, engine="swift", domain="simple"
    )
    outcome = run_query(program, FILE_PROPERTY, store, "worker5")
    assert not outcome.cold
    assert outcome.out_of_cone_interior_rows == 0
    assert outcome.total_work < whole.report.result.metrics.total_work
    assert outcome.cone_size == 2  # {main, worker5}
    target = resolve_target(program, "worker5")
    assert outcome.answer == reference_errors(program, target)


def test_repeated_queries_are_deterministic(tmp_path):
    program = wide_fanout(48, seed=3)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="simple")
    clear_query_cache()
    first = run_query(program, FILE_PROPERTY, store, "worker2")
    again = run_query(program, FILE_PROPERTY, store, "worker2")
    assert first.answer == again.answer
    assert first.total_work == again.total_work
    assert again.out_of_cone_interior_rows == 0


def test_queries_never_write_the_store(tmp_path):
    program = hub_flood(6)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="td", domain="simple")
    before = sorted(p.name for p in (tmp_path / "store").iterdir())
    run_query(program, FILE_PROPERTY, store, "caller2", engine="td")
    after = sorted(p.name for p in (tmp_path / "store").iterdir())
    assert before == after


# -- the oracle: query == whole-program reference at the target -------------------------


@pytest.mark.parametrize("engine", ["td", "swift"])
@pytest.mark.parametrize("domain", ["simple", "full"])
def test_query_matches_reference_across_engines_and_domains(
    tmp_path, engine, domain
):
    program = hub_flood(5)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine=engine, domain=domain)
    for name in ("caller1", "hub", "hub:2"):
        target = resolve_target(program, name, ControlFlowGraphs(program))
        outcome = run_query(
            program, FILE_PROPERTY, store, name, engine=engine, domain=domain
        )
        assert outcome.answer == reference_errors(program, target, domain), (
            engine,
            domain,
            name,
        )


@pytest.mark.parametrize("scheduler", ["fifo", "lifo", "scc-topo", "callee-depth"])
def test_query_matches_reference_across_schedulers(tmp_path, scheduler):
    program = wide_fanout(32, seed=1)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(
        program, FILE_PROPERTY, store, engine="swift", domain="simple",
        scheduler=scheduler,
    )
    target = resolve_target(program, "worker1")
    outcome = run_query(
        program, FILE_PROPERTY, store, "worker1", scheduler=scheduler
    )
    assert outcome.answer == reference_errors(program, target)


@pytest.mark.parametrize("kernel", KERNELS)
def test_query_matches_reference_across_kernels(tmp_path, kernel):
    program = scc_heavy(20, seed=2)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(
        program, FILE_PROPERTY, store, engine="swift", domain="simple",
        kernel=kernel,
    )
    name = sorted(n for n in program.names() if n.startswith("c1_"))[0]
    target = resolve_target(program, name)
    outcome = run_query(
        program, FILE_PROPERTY, store, name, kernel=kernel
    )
    assert outcome.answer == reference_errors(program, target)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(program=programs(), engine=st.sampled_from(["td", "swift"]))
def test_query_matches_reference_on_random_programs(program, engine):
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        store = SummaryStore(root)
        analyze_with_store(
            program, FILE_PROPERTY, store, engine=engine, domain="simple"
        )
        for name in program.names():
            target = resolve_target(program, name)
            outcome = run_query(
                program, FILE_PROPERTY, store, name, engine=engine
            )
            assert outcome.answer == reference_errors(program, target)


# -- other query kinds ------------------------------------------------------------------


def test_summaries_and_entries_match_whole_program(tmp_path):
    program = hub_flood(5)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="td", domain="simple")
    whole = run_typestate(program, FILE_PROPERTY, engine="td", domain="simple")
    got = run_query(
        program, FILE_PROPERTY, store, "hub", kind="summaries", engine="td"
    )
    assert got.answer == frozenset(whole.result.summaries("hub"))
    got = run_query(
        program, FILE_PROPERTY, store, "hub", kind="entries", engine="td"
    )
    assert got.answer == frozenset(whole.result.incoming_states("hub"))


# -- the service demand op --------------------------------------------------------------


def test_service_demand_op(tmp_path):
    from repro.ir.printer import format_program

    program = hub_flood(5)
    src = format_program(program)
    service = AnalysisService(tmp_path / "svc")
    cfg = {"engine": "td", "domain": "simple"}
    ran = service.handle(
        {"op": "analyze", "program": src, "format": "ir", "property": "File",
         "config": cfg}
    )
    assert ran["ok"]
    response = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "target": "caller2", "config": cfg}
    )
    assert response["ok"]
    assert response["op"] == "demand"
    assert response["kind"] == "errors"
    assert response["target"] == "caller2"
    assert not response["cold"]
    assert response["out_of_cone_interior_rows"] == 0
    assert response["cone_size"] == 2
    target = resolve_target(program, "caller2")
    want = sorted(
        [str(point), site] for point, site in reference_errors(program, target)
    )
    assert sorted(response["answer"]) == want
    stats = service.handle({"op": "stats"})
    assert stats["demands"] == 1


def test_service_demand_errors(tmp_path):
    from repro.ir.printer import format_program

    src = format_program(hub_flood(4))
    service = AnalysisService(tmp_path / "svc")
    no_target = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File"}
    )
    assert not no_target["ok"] and "target" in no_target["error"]
    bad_proc = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "target": "nosuch"}
    )
    assert not bad_proc["ok"]
    bad_kind = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "target": "hub", "kind": "vibes"}
    )
    assert not bad_kind["ok"]
    bad_engine = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "target": "hub", "config": {"engine": "bu"}}
    )
    assert not bad_engine["ok"]


# -- query precision: pinned-TD vs live-SWIFT cones -------------------------------------


def test_query_precision_characterization(tmp_path):
    """``--query-precision swift`` keeps BU triggers live inside the
    cone; hot targets can get BU-summarized mid-solve, and the merged
    summary *loses per-context findings* the pinned-TD reference
    keeps.  This test characterizes that delta rather than asserting
    it away: both precisions are deterministic, ``td`` equals the
    whole-program reference, and on wide-fanout worker3 the swift
    verdict is a strict subset of the td one (24 of 32 findings
    survive the summarization)."""
    program = wide_fanout(48, seed=3)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="simple")
    target = resolve_target(program, "worker3")

    clear_query_cache()
    td = run_query(program, FILE_PROPERTY, store, "worker3", query_precision="td")
    clear_query_cache()
    swift = run_query(
        program, FILE_PROPERTY, store, "worker3", query_precision="swift"
    )
    clear_query_cache()
    swift_again = run_query(
        program, FILE_PROPERTY, store, "worker3", query_precision="swift"
    )

    assert td.query_precision == "td" and swift.query_precision == "swift"
    # td is the reference precision: identical to the whole-program verdict.
    assert td.answer == reference_errors(program, target)
    # swift is deterministic — same delta every run...
    assert swift.answer == swift_again.answer
    # ...and strictly weaker here: a proper subset of the td findings.
    assert swift.answer < td.answer
    assert (len(td.answer), len(swift.answer)) == (32, 24)
    # On targets main never multiplexes, the two precisions agree.
    clear_query_cache()
    td0 = run_query(program, FILE_PROPERTY, store, "worker0", query_precision="td")
    clear_query_cache()
    sw0 = run_query(
        program, FILE_PROPERTY, store, "worker0", query_precision="swift"
    )
    assert td0.answer == sw0.answer


def test_query_precision_validated_and_batched(tmp_path):
    from repro.query import run_query_batch

    program = wide_fanout(48, seed=3)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="simple")
    with pytest.raises(QueryError):
        run_query(
            program, FILE_PROPERTY, store, "worker3", query_precision="banana"
        )
    # The batch path honors the same knob: batch swift == sequential swift.
    clear_query_cache()
    batch = run_query_batch(
        program, FILE_PROPERTY, store, ["worker3", "worker0"],
        query_precision="swift",
    )
    clear_query_cache()
    single = run_query(
        program, FILE_PROPERTY, store, "worker3", query_precision="swift"
    )
    assert batch.query_precision == "swift"
    assert batch.answer_for("worker3") == single.answer
