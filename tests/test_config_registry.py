"""``AnalysisConfig`` validation, the registries, and the session pipeline.

Covers the configuration core's contracts: unknown names raise listing
the registered choices, aliases normalize, the canonical dict captures
exactly the identity fields, the experiment wall caps live on the
engine specs, and every registered engine × domain pair actually runs a
smoke program through ``AnalysisSession`` with engine-independent
findings.
"""

import pytest

from repro.framework.config import AnalysisConfig
from repro.framework.metrics import Budget
from repro.framework.registry import (
    BU_WALL_CAP_SECONDS,
    DEFAULT_WALL_CAP_SECONDS,
    DOMAINS,
    ENGINES,
    domain_names,
    engine_names,
)
from repro.framework.session import analysis_session
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY

from tests.helpers import figure1_program


# -- validation ---------------------------------------------------------------------
def test_unknown_engine_lists_choices():
    with pytest.raises(ValueError) as err:
        AnalysisConfig(engine="sideways")
    message = str(err.value)
    for name in engine_names():
        assert name in message


def test_unknown_domain_lists_choices():
    with pytest.raises(ValueError) as err:
        AnalysisConfig(domain="nope")
    message = str(err.value)
    for name in domain_names():
        assert name in message


def test_unknown_scheduler_lists_choices():
    with pytest.raises(ValueError) as err:
        AnalysisConfig(scheduler="random")
    message = str(err.value)
    assert "lifo" in message and "fifo" in message and "callee-depth" in message


def test_registry_get_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown engine"):
        ENGINES.get("made-up")
    with pytest.raises(ValueError, match="unknown domain"):
        DOMAINS.get("made-up")


@pytest.mark.parametrize(
    "kwargs", [{"k": 0}, {"theta": 0}, {"max_workers": 0}]
)
def test_threshold_validation(kwargs):
    with pytest.raises(ValueError):
        AnalysisConfig(**kwargs)


def test_preload_rejected_for_bu():
    with pytest.raises(ValueError, match="warm starts"):
        AnalysisConfig(engine="bu", preload=object())


def test_alias_normalization():
    assert AnalysisConfig(domain="full").domain == "typestate-full"
    assert AnalysisConfig(domain="simple").domain == "typestate-simple"
    # Equal configs compare equal however the domain was spelled.
    assert AnalysisConfig(domain="full") == AnalysisConfig(domain="typestate-full")


def test_replace_revalidates():
    config = AnalysisConfig()
    with pytest.raises(ValueError):
        config.replace(engine="nope")
    assert config.replace(k=7).k == 7


# -- canonical form -----------------------------------------------------------------
def test_canonical_dict_normalizes_thresholds():
    # td ignores k/theta: whatever it carried, the identity is the same.
    assert (
        AnalysisConfig(engine="td", k=9, theta=3).canonical_dict()
        == AnalysisConfig(engine="td").canonical_dict()
    )
    swift = AnalysisConfig(engine="swift", k=9).canonical_dict()
    assert swift["k"] == 9 and swift["theta"] == 1


def test_canonical_dict_excludes_runtime_fields():
    base = AnalysisConfig()
    loaded = AnalysisConfig(
        budget=Budget(max_work=1), sink=object(), max_workers=4
    )
    assert base.canonical_dict() == loaded.canonical_dict()


def test_canonical_dict_contains_identity_fields():
    d = AnalysisConfig(scheduler="fifo", tracked_sites={"h2", "h1"}).canonical_dict()
    assert d["tracked_sites"] == ["h1", "h2"]
    assert d["flags"]["scheduler"] == "fifo"
    assert set(d) == {
        "engine",
        "domain",
        "k",
        "theta",
        "bu_triggers",
        "tracked_sites",
        "flags",
    }


# -- experiment configs -------------------------------------------------------------
def test_for_experiment_wall_caps():
    bu = AnalysisConfig.for_experiment("bu", budget_work=10)
    assert bu.budget.max_seconds == BU_WALL_CAP_SECONDS
    for engine in ("td", "swift", "concurrent"):
        config = AnalysisConfig.for_experiment(engine, budget_work=10)
        assert config.budget.max_seconds == DEFAULT_WALL_CAP_SECONDS
        assert config.domain == "typestate-full"


def test_for_experiment_rejects_unknown_overrides():
    with pytest.raises(TypeError):
        AnalysisConfig.for_experiment("swift", frobnicate=True)


def test_run_engine_rejects_unknown_kwargs():
    from repro.bench import load_benchmark
    from repro.experiments.harness import run_engine

    with pytest.raises(TypeError):
        run_engine(load_benchmark("jpat-p"), "swift", frobnicate=True)


# -- every engine x domain pair runs ------------------------------------------------
@pytest.mark.parametrize("engine", engine_names())
@pytest.mark.parametrize("domain", domain_names())
def test_every_pair_instantiates_and_runs(engine, domain):
    program = figure1_program()
    config = AnalysisConfig(engine=engine, domain=domain, k=2, theta=1)
    options = {"prop": FILE_PROPERTY} if domain.startswith("typestate-") else {}
    outcome = analysis_session().run(program, config, **options)
    assert not outcome.timed_out
    assert outcome.metrics.total_work > 0
    assert outcome.engine == engine and outcome.domain == config.domain


@pytest.mark.parametrize("domain", domain_names())
def test_findings_coincide_across_engines(domain):
    """Per domain, every engine reports the same thing.

    Type-state findings carry program points, and a pure bottom-up run
    only knows main's exit — so type-state agreement is on error
    *sites*; the fact domains agree on the exit facts exactly.
    """
    program = figure1_program()
    options = {"prop": FILE_PROPERTY} if domain.startswith("typestate-") else {}
    per_engine = {}
    for engine in engine_names():
        config = AnalysisConfig(engine=engine, domain=domain, k=2, theta=1)
        outcome = analysis_session().run(program, config, **options)
        if domain.startswith("typestate-"):
            per_engine[engine] = frozenset(site for (_, site) in outcome.findings)
        else:
            per_engine[engine] = outcome.findings
    assert len(set(per_engine.values())) == 1, per_engine


# -- the concurrent engine is reachable from the string dispatch --------------------
def test_run_typestate_accepts_concurrent():
    program = figure1_program()
    swift = run_typestate(program, FILE_PROPERTY, engine="swift", k=2)
    conc = run_typestate(
        program, FILE_PROPERTY, engine="concurrent", k=2, max_workers=2
    )
    assert conc.engine == "concurrent"
    assert conc.errors == swift.errors


def test_cli_verify_accepts_concurrent_and_scheduler():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "verify",
            "prog.mini",
            "--engine",
            "concurrent",
            "--domain",
            "killgen",
            "--scheduler",
            "callee-depth",
        ]
    )
    assert args.engine == "concurrent"
    assert args.domain == "killgen"
    assert args.scheduler == "callee-depth"
