"""SCC condensation of the call graph and the scc-topo worklist policy.

The condensation (iterative Tarjan, :mod:`repro.callgraph.scc`) drives
two orders: reverse-topological wavefronts for parallel bottom-up
summarization and the topological (callers-first) ``scc-topo`` pop
order that lets per-node frontiers accumulate for batched propagation.
"""

from repro.callgraph.scc import Condensation, condensation, tarjan_sccs
from repro.framework.scheduling import make_scheduler
from repro.ir.builder import ProgramBuilder
from repro.ir.cfg import ProgramPoint

from tests.helpers import diamond_program, figure1_program, recursive_program


def mutual_recursion_program():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.call("ping").call("tail")
    with b.proc("ping") as p:
        with p.choose() as c:
            with c.branch() as stop:
                stop.invoke("f", "open")
            with c.branch() as go:
                go.call("pong")
    with b.proc("pong") as p:
        with p.choose() as c:
            with c.branch() as stop:
                stop.invoke("f", "close")
            with c.branch() as go:
                go.call("ping")
    with b.proc("tail") as p:
        p.invoke("f", "open")
    return b.build()


# -- tarjan ------------------------------------------------------------------------
def test_tarjan_emits_reverse_topological_order():
    neighbors = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
    sccs = tarjan_sccs(neighbors, ["a"])
    assert set(sccs) == {("a",), ("b",), ("c",), ("d",)}
    pos = {comp: i for i, comp in enumerate(sccs)}
    # Every callee component is emitted before its caller.
    assert pos[("d",)] < pos[("b",)] < pos[("a",)]
    assert pos[("d",)] < pos[("c",)] < pos[("a",)]


def test_tarjan_groups_cycles_into_one_component():
    neighbors = {"a": ["b"], "b": ["c"], "c": ["a", "d"], "d": []}
    sccs = tarjan_sccs(neighbors, ["a"])
    assert sccs == [("d",), ("a", "b", "c")]


def test_tarjan_skips_unreachable_nodes():
    neighbors = {"a": [], "z": []}
    assert tarjan_sccs(neighbors, ["a"]) == [("a",)]


def test_tarjan_deep_chain_does_not_recurse():
    # 50k-deep chain: a recursive Tarjan would blow the stack.
    n = 50_000
    neighbors = {str(i): [str(i + 1)] for i in range(n)}
    neighbors[str(n)] = []
    sccs = tarjan_sccs(neighbors, ["0"])
    assert len(sccs) == n + 1
    assert sccs[0] == (str(n),)
    assert sccs[-1] == ("0",)


# -- condensation ------------------------------------------------------------------
def test_condensation_ranks_callees_below_callers():
    cond = condensation(diamond_program())  # main -> left/right -> helper
    ranks = cond.ranks()
    assert ranks["helper"] < ranks["left"] < ranks["main"]
    assert ranks["helper"] < ranks["right"] < ranks["main"]
    assert cond.topological()[0] == ("main",)
    assert cond.reverse_topological()[0] == ("helper",)


def test_condensation_mutual_recursion_one_component():
    cond = condensation(mutual_recursion_program())
    i = cond.scc_index("ping")
    assert cond.scc_index("pong") == i
    assert cond.members(i) == ("ping", "pong")
    assert cond.is_cyclic(i)
    assert not cond.is_cyclic(cond.scc_index("tail"))


def test_condensation_self_recursion_is_cyclic():
    cond = condensation(recursive_program())
    assert cond.is_cyclic(cond.scc_index("rec"))
    assert not cond.is_cyclic(cond.scc_index("main"))


def test_condensation_memoized_per_program():
    program = figure1_program()
    assert condensation(program) is condensation(program)
    assert condensation(figure1_program()) is not condensation(program)


def test_condensation_is_deterministic():
    first = Condensation(diamond_program())
    second = Condensation(diamond_program())
    assert first.sccs == second.sccs
    assert first.ranks() == second.ranks()


# -- wavefronts --------------------------------------------------------------------
def test_wavefronts_respect_dependencies():
    cond = condensation(diamond_program())
    waves = cond.wavefronts()
    level = {
        proc: i
        for i, wave in enumerate(waves)
        for component in wave
        for proc in component
    }
    program = diamond_program()
    for proc in program:
        for callee in program.callees(proc):
            if cond.scc_index(callee) != cond.scc_index(proc):
                assert level[callee] < level[proc]
    # helper alone first; left/right are independent and share a wave.
    assert waves[0] == [("helper",)]
    assert sorted(waves[1]) == [("left",), ("right",)]
    assert waves[2] == [("main",)]


def test_wavefronts_restricted_to_target_set():
    cond = condensation(diamond_program())
    waves = cond.wavefronts({"left", "right"})
    # Excluded dependencies (helper) count as already satisfied, so
    # both components are ready in wave 0.
    assert len(waves) == 1
    assert sorted(waves[0]) == [("left",), ("right",)]
    assert cond.wavefronts(set()) == []


def test_wavefronts_keep_scc_members_together():
    waves = condensation(mutual_recursion_program()).wavefronts()
    components = [c for wave in waves for c in wave]
    assert ("ping", "pong") in components


# -- the scc-topo scheduler --------------------------------------------------------
def _item(proc, index, tag):
    return (ProgramPoint(proc, index), None, tag)


def test_scc_topo_pops_callers_before_callees():
    scheduler = make_scheduler("scc-topo", diamond_program())
    at_helper = _item("helper", 0, "s1")
    at_main = _item("main", 0, "s2")
    at_left = _item("left", 0, "s3")
    for item in (at_helper, at_main, at_left):
        scheduler.push(item)
    assert scheduler.peek() == at_main
    assert [scheduler.pop() for _ in range(3)] == [at_main, at_left, at_helper]
    assert not scheduler


def test_scc_topo_pop_frontier_groups_by_point():
    scheduler = make_scheduler("scc-topo", diamond_program())
    a = _item("helper", 0, "s1")
    b = _item("helper", 1, "s2")
    c = _item("helper", 0, "s3")
    for item in (a, b, c):
        scheduler.push(item)
    frontier = scheduler.pop_frontier(16)
    # The whole helper:0 group comes out together, in insertion order.
    assert frontier == [a, c]
    assert len(scheduler) == 1
    assert scheduler.pop_frontier(16) == [b]
    assert not scheduler


def test_scc_topo_pop_frontier_respects_limit():
    scheduler = make_scheduler("scc-topo", diamond_program())
    items = [_item("main", 0, f"s{i}") for i in range(5)]
    for item in items:
        scheduler.push(item)
    first = scheduler.pop_frontier(2)
    assert first == items[:2]
    assert scheduler.pop_frontier(16) == items[2:]


def test_scc_topo_interleaves_pushes_correctly():
    # Re-pushing into a rank that was drained must resurface it.
    scheduler = make_scheduler("scc-topo", diamond_program())
    scheduler.push(_item("main", 0, "s1"))
    assert scheduler.pop() == _item("main", 0, "s1")
    scheduler.push(_item("helper", 0, "s2"))
    scheduler.push(_item("main", 1, "s3"))
    assert scheduler.pop() == _item("main", 1, "s3")
    assert scheduler.pop() == _item("helper", 0, "s2")
    assert len(scheduler) == 0


def test_scc_topo_unknown_proc_ranks_last():
    # Items for procedures outside the call graph (defensive: cannot
    # happen from the engines) fall to the lowest rank.
    scheduler = make_scheduler("scc-topo", diamond_program())
    ghost = (ProgramPoint("ghost", 0), None, "s1")
    scheduler.push(ghost)
    scheduler.push(_item("helper", 0, "s2"))
    assert scheduler.pop() == _item("helper", 0, "s2")
    assert scheduler.pop() == ghost
