"""Fingerprints, codecs, and the on-disk summary store."""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.alias import points_to_oracle
from repro.incremental import (
    Codec,
    ProgramFingerprints,
    Snapshot,
    SummaryStore,
    config_fingerprint,
)
from repro.incremental.fingerprint import alias_facts, body_fingerprint
from repro.incremental.invalidate import build_snapshot
from repro.incremental.store import STORE_VERSION
from repro.ir.parser import parse_program
from repro.typestate.client import make_analyses, run_typestate
from repro.typestate.properties import FILE_PROPERTY, property_by_name

from tests.helpers import all_small_programs
from tests.test_property_based import programs

CHAIN = """
proc main { v = new h1; v.open(); call mid; }
proc mid { call leaf; }
proc leaf { skip; }
"""


def chain():
    return parse_program(CHAIN)


# -- fingerprints -------------------------------------------------------------------
def test_body_fingerprint_stable_and_sensitive():
    a, b = chain(), chain()
    assert body_fingerprint(a, "leaf") == body_fingerprint(b, "leaf")
    edited = parse_program(CHAIN.replace("proc leaf { skip; }", "proc leaf { skip; skip; }"))
    assert body_fingerprint(a, "leaf") != body_fingerprint(edited, "leaf")


def test_cone_fingerprint_tracks_callees():
    base = ProgramFingerprints(chain())
    edited = ProgramFingerprints(
        parse_program(CHAIN.replace("proc leaf { skip; }", "proc leaf { skip; skip; }"))
    )
    # leaf's edit reaches every cone that contains it...
    for proc in ("main", "mid", "leaf"):
        assert base.cone[proc] != edited.cone[proc]
    # ...but only leaf's own body fingerprint moved.
    assert base.body["main"] == edited.body["main"]
    assert base.body["mid"] == edited.body["mid"]
    assert base.body["leaf"] != edited.body["leaf"]


def test_body_fingerprint_folds_alias_facts():
    program = chain()
    oracle = points_to_oracle(program)
    facts = alias_facts(program, oracle)
    with_facts = body_fingerprint(program, "main", facts)
    assert with_facts != body_fingerprint(program, "main")
    # A changed alias set for a variable main uses changes main's fp.
    altered = dict(facts)
    altered["v"] = frozenset(facts.get("v", frozenset()) | {"h99"})
    assert body_fingerprint(program, "main", altered) != with_facts
    # ...but not the fp of a body that never mentions it.
    assert body_fingerprint(program, "leaf", altered) == body_fingerprint(
        program, "leaf", facts
    )


def test_config_fingerprint_discriminates():
    base_desc, base = config_fingerprint(
        FILE_PROPERTY, domain="full", engine="swift", k=5, theta=1
    )
    assert base_desc["property"]["name"] == "File"
    variants = [
        config_fingerprint(FILE_PROPERTY, domain="full", engine="swift", k=6, theta=1),
        config_fingerprint(FILE_PROPERTY, domain="full", engine="td"),
        config_fingerprint(FILE_PROPERTY, domain="simple", engine="swift", k=5, theta=1),
        config_fingerprint(
            property_by_name("Iterator"), domain="full", engine="swift", k=5, theta=1
        ),
        config_fingerprint(
            FILE_PROPERTY,
            domain="full",
            engine="swift",
            k=5,
            theta=1,
            tracked_sites=["h1"],
        ),
    ]
    fps = {base} | {fp for _, fp in variants}
    assert len(fps) == len(variants) + 1
    # Same inputs, same fingerprint (and flag order is irrelevant).
    again = config_fingerprint(
        FILE_PROPERTY, domain="full", engine="swift", k=5, theta=1,
        flags={"b": 1, "a": 2},
    )
    swapped = config_fingerprint(
        FILE_PROPERTY, domain="full", engine="swift", k=5, theta=1,
        flags={"a": 2, "b": 1},
    )
    assert again[1] == swapped[1]


# -- codec --------------------------------------------------------------------------
@pytest.mark.parametrize("domain", ["simple", "full"])
@pytest.mark.parametrize(
    "program", all_small_programs(), ids=lambda p: p.main + str(len(list(p.names())))
)
def test_codec_round_trips_run_artifacts(domain, program):
    """Every state and summary an actual run produces survives
    encode → decode → encode unchanged."""
    _, bu_analysis, _ = make_analyses(program, FILE_PROPERTY, domain)
    codec = Codec(domain, bu_analysis)
    report = run_typestate(program, FILE_PROPERTY, engine="swift", domain=domain)
    seen_states = 0
    for _, pairs in report.result.td.items():
        for entry, sigma in pairs:
            for state in (entry, sigma):
                enc = codec.encode_state(state)
                assert codec.decode_state(enc) == state
                assert codec.encode_state(codec.decode_state(enc)) == enc
                seen_states += 1
    assert seen_states > 0
    for summary in report.result.bu.values():
        enc = codec.encode_summary(summary)
        decoded = codec.decode_summary(enc)
        assert codec.encode_summary(decoded) == enc
        assert decoded.relations == summary.relations


def test_codec_rejects_unknown_domain():
    with pytest.raises(ValueError):
        Codec("made-up", None)


# -- snapshot serialization ---------------------------------------------------------
def _snapshot_for(program, engine="swift", domain="full"):
    _, bu_analysis, _ = make_analyses(program, FILE_PROPERTY, domain)
    codec = Codec(domain, bu_analysis)
    config, config_fp = config_fingerprint(
        FILE_PROPERTY, domain=domain, engine=engine, k=5, theta=1
    )
    report = run_typestate(program, FILE_PROPERTY, engine=engine, domain=domain)
    fps = ProgramFingerprints(program)
    return build_snapshot(config, config_fp, fps, report.result, codec)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=programs(), engine=st.sampled_from(["td", "swift"]))
def test_snapshot_serialization_round_trip(program, engine):
    """save → load → re-serialize is byte-identical on random programs."""
    snap = _snapshot_for(program, engine=engine, domain="simple")
    data = snap.to_bytes()
    loaded = Snapshot.from_bytes(data)
    assert loaded.to_bytes() == data


def test_store_save_load_byte_identical(tmp_path):
    snap = _snapshot_for(chain())
    store = SummaryStore(tmp_path / "store")
    path = store.save(snap)
    assert path.exists()
    loaded = store.load(snap.config_fp)
    assert loaded is not None
    assert loaded.to_bytes() == path.read_bytes() == snap.to_bytes()


# -- robustness ---------------------------------------------------------------------
def test_load_missing_is_cold(tmp_path):
    assert SummaryStore(tmp_path / "nowhere").load("ab" * 32) is None


def test_load_corrupt_is_cold(tmp_path):
    snap = _snapshot_for(chain())
    store = SummaryStore(tmp_path)
    path = store.save(snap)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    assert store.load(snap.config_fp) is None  # truncated mid-line
    path.write_text("this is not json\n")
    assert store.load(snap.config_fp) is None
    path.write_text("")
    assert store.load(snap.config_fp) is None


def test_load_version_mismatch_is_cold(tmp_path):
    snap = _snapshot_for(chain())
    store = SummaryStore(tmp_path)
    path = store.save(snap)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["version"] = STORE_VERSION + 1
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    assert store.load(snap.config_fp) is None


def test_load_fingerprint_mismatch_is_cold(tmp_path):
    snap = _snapshot_for(chain())
    store = SummaryStore(tmp_path)
    data = store.save(snap).read_bytes()
    other_fp = "f" * 64
    store.path_for(other_fp).write_bytes(data)
    assert store.load(other_fp) is None  # header fp disagrees with name


# -- maintenance --------------------------------------------------------------------
def test_stats_gc_clear(tmp_path):
    store = SummaryStore(tmp_path)
    assert store.stats() == []
    snap = _snapshot_for(chain())
    store.save(snap)
    td_snap = _snapshot_for(chain(), engine="td")
    store.save(td_snap)
    (tmp_path / "snapshot-bad.jsonl").write_text("garbage\n")
    (tmp_path / f"snapshot-x.jsonl.tmp.{1234}").write_text("stranded\n")
    rows = store.stats()
    assert len(rows) == 3
    by_file = {row["file"]: row for row in rows}
    assert by_file["snapshot-bad.jsonl"]["corrupt"] is True
    good = by_file[store.path_for(snap.config_fp).name]
    assert good["engine"] == "swift" and good["contexts"] > 0
    # gc removes the stranded tmp and, with keep=1, all but the newest.
    removed = store.gc(keep=1)
    assert any(".tmp." in p.name for p in removed)
    assert len(store.snapshot_paths()) == 1
    assert store.clear() == 1
    assert store.snapshot_paths() == []


# -- frontier projections -----------------------------------------------------------
def _frontier_setup(tmp_path, program=None):
    from repro.incremental import analyze_with_store

    if program is None:
        program = parse_program(
            """
            proc main { v = new h1; v.open(); call mid; v.close(); }
            proc mid { call leaf; }
            proc leaf { f = new h2; f.open(); f.close(); }
            """
        )
    store = SummaryStore(tmp_path / "store")
    result = analyze_with_store(
        program, FILE_PROPERTY, store, engine="swift", domain="simple"
    )
    return program, store, result


def test_analyze_writes_frontier_alongside_snapshot(tmp_path):
    from repro.incremental import analyze_with_store
    from repro.ir.cfg import ControlFlowGraphs

    program, store, result = _frontier_setup(tmp_path)
    config_fp = result.config_fp
    assert store.path_for(config_fp).is_file()
    assert store.frontier_path_for(config_fp).is_file()
    frontier = store.load_frontier(config_fp)
    assert frontier is not None
    assert frontier.config_fp == config_fp
    assert set(frontier.procs) == set(program.names())
    # Only entry (0) and exit rows survive the projection.
    cfgs = ControlFlowGraphs(program)
    for proc, payload in frontier.procs.items():
        keep = {0, cfgs.exit(proc).index}
        for _, rows in payload["contexts"]:
            assert {idx for idx, _ in rows} <= keep, proc
    # Unchanged re-analysis backfills a deleted frontier file.
    store.frontier_path_for(config_fp).unlink()
    again = analyze_with_store(
        program, FILE_PROPERTY, store, engine="swift", domain="simple"
    )
    assert again.store_hits > 0
    assert store.frontier_path_for(config_fp).is_file()


def test_frontier_partial_load_materializes_only_wanted_procs(tmp_path):
    _, store, result = _frontier_setup(tmp_path)
    config_fp = result.config_fp
    partial = store.load_frontier(config_fp, procs={"mid", "leaf"})
    assert partial is not None
    assert set(partial.procs) == {"mid", "leaf"}
    full = store.load_frontier(config_fp)
    for proc in ("mid", "leaf"):
        assert partial.procs[proc] == full.procs[proc]


def test_frontier_degrades_to_none_never_wrong(tmp_path):
    _, store, result = _frontier_setup(tmp_path)
    config_fp = result.config_fp
    assert store.load_frontier("ab" * 32) is None  # missing
    path = store.frontier_path_for(config_fp)
    data = path.read_bytes()
    other_fp = "f" * 64
    store.frontier_path_for(other_fp).write_bytes(data)
    assert store.load_frontier(other_fp) is None  # header/name mismatch
    path.write_bytes(data[: len(data) // 2])
    assert store.load_frontier(config_fp) is None  # truncated
    path.write_text("not a frontier\n")
    assert store.load_frontier(config_fp) is None  # garbage
    # A frontier header from a future store version is cold too.
    lines = data.decode("utf-8").splitlines()
    header = json.loads(lines[0])
    header["version"] = STORE_VERSION + 1
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    assert store.load_frontier(config_fp) is None


def test_stats_and_gc_account_for_frontier_files(tmp_path):
    from repro.incremental import analyze_with_store

    program, store, result = _frontier_setup(tmp_path)
    config_fp = result.config_fp
    td = analyze_with_store(
        program, FILE_PROPERTY, store, engine="td", domain="simple"
    )
    orphan = store.root / "frontier-deadbeefdeadbeefdeadbeefdeadbeef.jsonl"
    orphan.write_text("stray\n")
    rows = store.stats()
    by_file = {row["file"]: row for row in rows}
    parent = by_file[store.path_for(config_fp).name]
    assert parent["frontier"]["file"] == store.frontier_path_for(config_fp).name
    assert parent["frontier"]["procs"] == len(set(program.names()))
    assert parent["frontier"]["bytes"] > 0
    assert by_file[orphan.name]["orphan_frontier"] is True
    # gc: dropped parents take their frontier along; orphans go too.
    removed = store.gc(keep=1)
    removed_names = {p.name for p in removed}
    assert orphan.name in removed_names
    survivors = {p.name for p in store.snapshot_paths()}
    assert len(survivors) == 1
    for frontier_path in store.frontier_paths():
        assert ("snapshot-" + frontier_path.name[len("frontier-"):]) in survivors
    # clear() drops every remaining snapshot + frontier pair.
    assert store.clear() == 2
    assert store.frontier_paths() == []
    assert td is not None  # silence the unused-result lint


def test_version_bump_sends_old_stores_cold_then_rewrites(tmp_path):
    """The PR-10 fingerprint story: a store written by an older layout
    version loads cold (never wrong), and the next analyze rewrites
    both files at the current version."""
    from repro.incremental import analyze_with_store

    program, store, result = _frontier_setup(tmp_path)
    config_fp = result.config_fp
    for path in (store.path_for(config_fp), store.frontier_path_for(config_fp)):
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = STORE_VERSION - 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    assert store.load(config_fp) is None
    assert store.load_frontier(config_fp) is None
    again = analyze_with_store(
        program, FILE_PROPERTY, store, engine="swift", domain="simple"
    )
    assert again.cold  # old layout is a cold start, not a wrong answer
    assert json.loads(
        store.path_for(config_fp).read_text().splitlines()[0]
    )["version"] == STORE_VERSION
    assert json.loads(
        store.frontier_path_for(config_fp).read_text().splitlines()[0]
    )["version"] == STORE_VERSION
