"""Tests for the hot-path layer: memo tables, indexing, interning.

The contract under test (see framework/caching.py): the optimizations
change wall clock only — tables, entry counts and the deterministic
work counters are identical with caches on or off, including runs that
exhaust their Budget mid-flight.
"""

import pickle

import pytest

from repro.framework.caching import RComposeCache, RTransferCache, TransferCache
from repro.framework.metrics import Budget, BudgetExceededError, Metrics
from repro.framework.topdown import TopDownEngine
from repro.ir.builder import ProgramBuilder
from repro.ir.commands import Invoke, New
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState, bootstrap_state, intern_state
from repro.typestate.td_analysis import SimpleTypestateTD
from repro.typestate.full.atoms import InMust, InMustNot, NotInMust
from repro.typestate.full.states import FullAbstractState, intern_full_state


def _flood_program(n=8):
    b = ProgramBuilder()
    with b.proc("helper") as p:
        p.invoke("a", "open").invoke("a", "close")
    with b.proc("main") as p:
        p.new("a", "h1")
        for _ in range(n):
            p.call("helper")
    return b.build()


# -- memo tables ---------------------------------------------------------------------
def test_transfer_cache_hit_miss_counters():
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    metrics = Metrics()
    cache = TransferCache(analysis, metrics)
    sigma = bootstrap_state(FILE_PROPERTY)
    cmd = New("a", "h1")
    first = cache(cmd, sigma)
    second = cache(cmd, sigma)
    assert first == second == analysis.transfer(cmd, sigma)
    assert metrics.transfer_cache_misses == 1
    assert metrics.transfer_cache_hits == 1
    assert len(cache) == 1


def test_cache_fifo_eviction_is_bounded():
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    metrics = Metrics()
    cache = TransferCache(analysis, metrics, maxsize=2)
    sigma = bootstrap_state(FILE_PROPERTY)
    cache(New("a", "h1"), sigma)
    cache(New("b", "h1"), sigma)
    cache(New("c", "h1"), sigma)  # evicts the oldest entry
    assert len(cache) == 2
    # The first key was evicted: re-querying it is a miss again.
    cache(New("a", "h1"), sigma)
    assert metrics.transfer_cache_misses == 4
    cache.clear()
    assert len(cache) == 0


def test_bu_caches_match_raw_operators():
    analysis = SimpleTypestateBU(FILE_PROPERTY)
    metrics = Metrics()
    rtransfer = RTransferCache(analysis, metrics)
    rcompose = RComposeCache(analysis, metrics)
    ident = analysis.identity()
    cmd = Invoke("a", "open")
    rels = rtransfer(cmd, ident)
    assert rels == analysis.rtransfer(cmd, ident)
    assert rtransfer(cmd, ident) == rels and metrics.rtransfer_cache_hits == 1
    for r in rels:
        assert rcompose(ident, r) == analysis.rcompose(ident, r)
    assert metrics.rcompose_cache_misses == len(rels)


# -- counters are identical with caches on/off ----------------------------------------
@pytest.mark.parametrize("indexed", [True, False])
def test_work_counters_independent_of_caches(indexed):
    program = _flood_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    on = TopDownEngine(
        program, analysis, enable_caches=True, indexed_summaries=indexed
    ).run(initial)
    off = TopDownEngine(
        program, analysis, enable_caches=False, indexed_summaries=indexed
    ).run(initial)
    assert on.td == off.td
    assert on.metrics.total_work == off.metrics.total_work
    assert on.metrics.transfers == off.metrics.transfers
    assert on.metrics.propagations == off.metrics.propagations
    # The cached engine saw real traffic and every transfer went
    # through the memo table; the uncached one reports none.
    assert (
        on.metrics.transfer_cache_hits + on.metrics.transfer_cache_misses
        == on.metrics.transfers
    )
    assert off.metrics.cache_hits == 0 and off.metrics.cache_misses == 0
    assert on.metrics.computed_work < on.metrics.total_work


def test_budget_timeout_rows_identical_with_caches_on_off():
    """The Budget sees raw counters, so a work-limited run stops at the
    same point — and reports the same totals — with caches on or off."""
    program = _flood_program(16)
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    outcomes = []
    for enable in (True, False):
        engine = TopDownEngine(
            program, analysis, budget=Budget(max_work=40), enable_caches=enable
        )
        result = engine.run(initial)
        assert result.timed_out
        outcomes.append((result.metrics.total_work, result.td))
    assert outcomes[0] == outcomes[1]


# -- interning and cached hashes ------------------------------------------------------
def test_intern_state_returns_canonical_instance():
    a = AbstractState("h1", "opened", frozenset({"a"}))
    b = AbstractState("h1", "opened", frozenset({"a"}))
    assert a is not b and a == b and hash(a) == hash(b)
    assert intern_state(a) is intern_state(b)
    fa = FullAbstractState("h1", "opened", frozenset({"a"}), frozenset({"b"}))
    fb = FullAbstractState("h1", "opened", frozenset({"a"}), frozenset({"b"}))
    assert intern_full_state(fa) is intern_full_state(fb)


def test_states_and_atoms_survive_pickling():
    """Cached hashes are per-process (string hash randomization); the
    pickle path must rebuild through __init__ so they stay valid."""
    values = [
        AbstractState("h1", "opened", frozenset({"a"})),
        FullAbstractState("h1", "closed", frozenset(), frozenset({"a"})),
        InMust("a.f"),
        NotInMust("a"),
        InMustNot("b"),
    ]
    for value in values:
        clone = pickle.loads(pickle.dumps(value))
        assert clone == value and hash(clone) == hash(value)


def test_atom_hashes_distinguish_classes():
    # Field-only dataclass hashes would make these collide pairwise.
    atoms = [InMust("x"), NotInMust("x"), InMustNot("x")]
    assert len({hash(a) for a in atoms}) == len(atoms)
