"""Unit tests for the Andersen points-to analysis and alias oracles."""

from repro.alias import AndersenPointsTo, points_to_oracle
from repro.ir.builder import ProgramBuilder
from repro.typestate.full.oracle import AllMayAlias, NoMayAlias, PointsToOracle
from repro.typestate.states import BOOTSTRAP_SITE

from tests.helpers import figure1_program


def _solve(program):
    return AndersenPointsTo(program).solve()


def test_new_and_copy():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("a", "h1").assign("b", "a").assign("c", "b")
    result = _solve(b.build())
    for var in "abc":
        assert result.of_var(var) == frozenset({"h1"})


def test_copy_is_directional():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("a", "h1").new("b", "h2").assign("a", "b")
    result = _solve(b.build())
    assert result.of_var("a") == frozenset({"h1", "h2"})
    assert result.of_var("b") == frozenset({"h2"})


def test_field_store_then_load():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("box", "hbox").new("v", "h1")
        p.store("box", "val", "v")
        p.load("w", "box", "val")
    result = _solve(b.build())
    assert result.of_var("w") == frozenset({"h1"})
    assert result.of_field("hbox", "val") == frozenset({"h1"})


def test_field_sensitivity():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("box", "hbox").new("v", "h1").new("u", "h2")
        p.store("box", "left", "v")
        p.store("box", "right", "u")
        p.load("x", "box", "left")
    result = _solve(b.build())
    assert result.of_var("x") == frozenset({"h1"})


def test_load_before_store_order_insensitive():
    """Flow-insensitivity: a load textually before the store still sees
    the stored value."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("box", "hbox")
        p.load("x", "box", "val")
        p.new("v", "h1")
        p.store("box", "val", "v")
    result = _solve(b.build())
    assert result.of_var("x") == frozenset({"h1"})


def test_interprocedural_via_globals():
    program = figure1_program()
    result = _solve(program)
    assert result.of_var("f") == frozenset({"h1", "h2", "h3"})
    assert result.may_alias_vars("f", "v1")
    assert not result.may_alias_vars("v1", "v3")


def test_points_to_oracle_excludes_bootstrap():
    oracle = PointsToOracle({"v": frozenset({"h1", BOOTSTRAP_SITE})})
    assert oracle.sites_for("v") == frozenset({"h1"})
    assert not oracle.may_alias("v", BOOTSTRAP_SITE)


def test_all_and_no_oracles():
    oracle = AllMayAlias(["h1", "h2", BOOTSTRAP_SITE])
    assert oracle.sites_for("anything") == frozenset({"h1", "h2"})
    assert oracle.may_alias("x", "h1")
    none = NoMayAlias()
    assert none.sites_for("x") == frozenset()
    assert not none.may_alias("x", "h1")


def test_points_to_oracle_helper():
    oracle = points_to_oracle(figure1_program())
    assert oracle.may_alias("f", "h2")
    assert not oracle.may_alias("v1", "h2")
