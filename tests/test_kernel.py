"""Bitset-kernel edge cases and the CompiledKernel sharing protocol.

DESIGN §11: the compiled kernels are wall-clock-only — every test here
locks byte-identical tables, reports, and deterministic work counters
against the object engines while exercising the corners of the
compilation layer:

* seed enumeration is a *superset* (unreachable seeds cost one id and
  nothing else) and a *subset* (states past the seeds get ids lazily);
* commands that never execute compile no transfer rows;
* the relational kernel's ``rcompose``/``rtransfer`` over empty sets;
* budget aborts inside the mask solver keep their
  :class:`BudgetExceededError` kind, partial tables still materialize,
  and the incremental driver refuses to save them;
* a :class:`CompiledKernel` handle reused across sequential engines
  (including the flush protocol that forces a previous borrower's
  lazily-materialized result out before the tables reset).
"""

import pytest

from repro.framework.kernel import (
    RelationKernel,
    numpy_available,
    validate_kernel,
)
from repro.framework.metrics import (
    KIND_SECONDS,
    KIND_WORK,
    Budget,
    BudgetExceededError,
    Metrics,
)
from repro.framework.topdown import TopDownEngine
from repro.ir.commands import Invoke
from repro.incremental import SummaryStore, analyze_with_store
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.client import run_typestate
from repro.typestate.enumerate import seed_states
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState, bootstrap_state, intern_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_small_programs, figure1_program, loop_program

INITIAL = [bootstrap_state(FILE_PROPERTY)]


def _run(program, **kwargs):
    return TopDownEngine(
        program, SimpleTypestateTD(FILE_PROPERTY), **kwargs
    ).run(INITIAL)


def _work_counters(metrics):
    return (
        metrics.transfers,
        metrics.propagations,
        metrics.td_summary_reuses,
        metrics.summary_instantiations,
        metrics.total_work,
    )


def _assert_same_result(kernel_result, object_result):
    assert kernel_result.td == object_result.td
    assert dict(kernel_result.entry_counts) == dict(object_result.entry_counts)
    assert kernel_result.call_records == object_result.call_records
    assert _work_counters(kernel_result.metrics) == _work_counters(
        object_result.metrics
    )


# -- seed enumeration edges -----------------------------------------------------------
def test_unreachable_seeds_cost_ids_only():
    """Seeding states no run reaches changes nothing but kernel_states."""
    program = figure1_program()
    baseline = _run(program)
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    seeds = seed_states(program, FILE_PROPERTY, analysis)
    ghosts = [
        intern_state(AbstractState("ghost-site", ts, frozenset({"zz"})))
        for ts in FILE_PROPERTY.states
    ]
    plain = TopDownEngine(
        program, analysis, kernel="bitset", kernel_seeds=seeds
    )
    padded = TopDownEngine(
        program, analysis, kernel="bitset", kernel_seeds=seeds + ghosts
    )
    plain_result = plain.run(INITIAL)
    padded_result = padded.run(INITIAL)
    _assert_same_result(plain_result, baseline)
    _assert_same_result(padded_result, baseline)
    assert (
        padded.metrics.kernel_states
        == plain.metrics.kernel_states + len(ghosts)
    )
    # Unreachable seeds never get transfer rows compiled for them.
    assert padded.metrics.kernel_rows == plain.metrics.kernel_rows


def test_states_past_the_seeds_get_ids_lazily():
    """An empty seed list is only a cold id space, never a wrong one."""
    for program in all_small_programs():
        baseline = _run(program)
        engine = TopDownEngine(
            program, SimpleTypestateTD(FILE_PROPERTY), kernel="bitset",
            kernel_seeds=[],
        )
        _assert_same_result(engine.run(INITIAL), baseline)
        assert engine.metrics.kernel_states > 0


def test_never_occurring_commands_compile_no_rows():
    """A dead procedure's commands stay out of the row tables."""
    base_program = figure1_program()
    procs = dict(base_program.procedures)
    dead = loop_program()
    procs["never_called"] = dead.procedures["use"]
    with_dead = type(base_program)(procs, main=base_program.main)

    live = TopDownEngine(
        base_program, SimpleTypestateTD(FILE_PROPERTY), kernel="bitset"
    )
    padded = TopDownEngine(
        with_dead, SimpleTypestateTD(FILE_PROPERTY), kernel="bitset"
    )
    live_result = live.run(INITIAL)
    padded_result = padded.run(INITIAL)
    assert live_result.td == padded_result.td
    assert padded.metrics.kernel_rows == live.metrics.kernel_rows


# -- relational kernel edges ----------------------------------------------------------
def test_rcompose_and_rtransfer_over_empty_sets():
    """Empty inputs produce empty outputs and count zero relations."""
    metrics = Metrics()
    krels = RelationKernel(SimpleTypestateBU(FILE_PROPERTY), metrics)
    out, created = krels.rcompose_set(frozenset(), frozenset())
    assert out == frozenset() and created == 0
    out, created = krels.rtransfer_set(Invoke("f", "open"), frozenset())
    assert out == frozenset() and created == 0
    assert metrics.kernel_relations == 0
    assert metrics.kernel_cells == 0


def test_rcompose_empty_callee_against_real_summary():
    """One side empty ⇒ empty cross product, whatever the other holds."""
    program = figure1_program()
    report = run_typestate(program, FILE_PROPERTY, engine="bu")
    summaries = report.result.summaries
    relations = next(
        s.relations for s in summaries.values() if s.relations
    )
    metrics = Metrics()
    krels = RelationKernel(SimpleTypestateBU(FILE_PROPERTY), metrics)
    out, created = krels.rcompose_set(relations, frozenset())
    assert out == frozenset() and created == 0
    out, created = krels.rcompose_set(frozenset(), relations)
    assert out == frozenset() and created == 0


# -- budget aborts --------------------------------------------------------------------
def _seeded_engine(program, **kwargs):
    """An engine with the seed propagation of ``run`` already applied,
    so ``_solve`` can be driven (and its exceptions observed) directly."""
    engine = TopDownEngine(program, SimpleTypestateTD(FILE_PROPERTY), **kwargs)
    main_entry, _ = engine._proc_points(program.main)
    for sigma in INITIAL:
        engine._record_entry(program.main, sigma)
        engine._propagate(main_entry, sigma, sigma)
    return engine


def test_kernel_solver_preserves_work_budget_kind():
    budget = Budget(max_work=3)
    engine = _seeded_engine(figure1_program(), budget=budget, kernel="bitset")
    assert engine._kernel_solver
    with pytest.raises(BudgetExceededError) as excinfo:
        engine._solve()
    assert excinfo.value.kind == KIND_WORK


def test_kernel_solver_preserves_clock_budget_kind():
    budget = Budget(max_seconds=0.0)
    budget.restart_clock()
    engine = _seeded_engine(figure1_program(), budget=budget, kernel="bitset")
    with pytest.raises(BudgetExceededError) as excinfo:
        engine._solve()
    assert excinfo.value.kind == KIND_SECONDS


def test_kernel_timeout_still_materializes_partial_tables():
    report = run_typestate(
        figure1_program(),
        FILE_PROPERTY,
        engine="td",
        budget=Budget(max_work=3),
        kernel="bitset",
    )
    assert report.timed_out
    # The lazy mask → object conversion runs for aborted solves too.
    partial = report.result.td
    assert isinstance(partial, dict)


def test_incremental_driver_never_saves_partial_kernel_results(tmp_path):
    store = SummaryStore(tmp_path)
    outcome = analyze_with_store(
        figure1_program(),
        FILE_PROPERTY,
        store,
        engine="td",
        domain="simple",
        budget=Budget(max_work=3),
        kernel="bitset",
    )
    assert outcome.report.timed_out
    assert not outcome.saved
    assert store.snapshot_paths() == []


# -- CompiledKernel sharing -----------------------------------------------------------
def test_compiled_kernel_reuse_is_identity():
    for program in all_small_programs():
        baseline = _run(program)
        analysis = SimpleTypestateTD(FILE_PROPERTY)
        compiler = TopDownEngine(program, analysis, kernel="bitset")
        first = compiler.run(INITIAL)
        _assert_same_result(first, baseline)
        tables = compiler.compiled_kernel()
        for scheduler in ("fifo", "scc-topo"):
            engine = TopDownEngine(
                program, analysis, kernel="bitset",
                kernel_tables=tables, scheduler=scheduler,
            )
            _assert_same_result(engine.run(INITIAL), baseline)
            # Table counters stay with the engine that compiled.
            assert engine.metrics.kernel_states == 0
            assert engine.metrics.kernel_compile_seconds == 0.0


def test_compiled_kernel_flush_protects_unread_results():
    """A result read only *after* a later borrower ran is still right:
    the next solve forces the previous borrower's lazy materialization
    out before resetting the shared run state."""
    program = figure1_program()
    baseline = _run(program)
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    compiler = TopDownEngine(program, analysis, kernel="bitset")
    unread_first = compiler.run(INITIAL)  # not read yet
    tables = compiler.compiled_kernel()
    second_engine = TopDownEngine(
        program, analysis, kernel="bitset", kernel_tables=tables
    )
    unread_second = second_engine.run(INITIAL)  # not read yet either
    third_engine = TopDownEngine(
        program, analysis, kernel="bitset", kernel_tables=tables
    )
    third = third_engine.run(INITIAL)
    # Read in reverse order of production: every result must have been
    # flushed out of the shared tables before they were reset.
    _assert_same_result(third, baseline)
    _assert_same_result(unread_second, baseline)
    _assert_same_result(unread_first, baseline)


def test_compiled_kernel_misuse_raises():
    program = figure1_program()
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    object_engine = TopDownEngine(program, analysis)
    with pytest.raises(ValueError):
        object_engine.compiled_kernel()
    kernel_engine = TopDownEngine(program, analysis, kernel="bitset")
    kernel_engine.run(INITIAL)
    tables = kernel_engine.compiled_kernel()
    with pytest.raises(ValueError):
        TopDownEngine(program, analysis, kernel_tables=tables)  # object kernel


def test_validate_kernel_rejects_unknown_names():
    with pytest.raises(ValueError):
        validate_kernel("simd")


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
def test_numpy_kernel_matches_object_tables():
    for program in all_small_programs():
        baseline = _run(program)
        _assert_same_result(_run(program, kernel="numpy"), baseline)
