"""Exhaustive checks of conditions C1-C3 (Figure 4) on small universes.

The simple type-state analyses of Figures 2 and 3 must satisfy all
three conditions for SWIFT's coincidence theorem to apply.  We
enumerate every abstract state over a 2-variable, 2-site universe and a
representative set of relations.
"""

import itertools

import pytest

from repro.framework.conditions import check_c1, check_c2, check_c3
from repro.framework.predicates import TRUE, Conjunction
from repro.framework.synthesis import SynthesizedTopDown
from repro.typestate.bu_analysis import (
    ConstRelation,
    HaveAtom,
    NotHaveAtom,
    SimpleTypestateBU,
    TransformerRelation,
)
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_prims, small_state_universe

VARS = ["f", "g"]
SITES = ["h1", "h2"]
METHODS = ["open", "close", "toString"]


def _states():
    return small_state_universe(FILE_PROPERTY, SITES, VARS, max_must=2)


def _predicates():
    preds = [TRUE]
    atoms = [HaveAtom("f"), NotHaveAtom("f"), HaveAtom("g"), NotHaveAtom("g")]
    for atom in atoms:
        preds.append(Conjunction.of([atom]))
    for a, b in itertools.combinations(atoms, 2):
        p = Conjunction.of([a, b])
        if p is not None and not getattr(p, "is_false", False):
            preds.append(p)
    return [p for p in preds if not getattr(p, "is_false", False)]


def _relations(bu):
    relations = [bu.identity()]
    iotas = [
        FILE_PROPERTY.identity_function(),
        FILE_PROPERTY.error_function(),
        FILE_PROPERTY.method_function("open"),
    ]
    masks = [
        (frozenset(), frozenset()),
        (frozenset({"f"}), frozenset()),
        (frozenset(), frozenset({"g"})),
        (frozenset({"f"}), frozenset({"g"})),
    ]
    for iota in iotas:
        for removed, added in masks:
            for pred in [TRUE, Conjunction.of([HaveAtom("f")]), Conjunction.of([NotHaveAtom("g")])]:
                relations.append(TransformerRelation(iota, removed, added, pred))
    relations.append(ConstRelation(AbstractState("h1", "closed", frozenset({"f"})), TRUE))
    relations.append(
        ConstRelation(
            AbstractState("h2", "error", frozenset()),
            Conjunction.of([HaveAtom("f")]),
        )
    )
    return relations


@pytest.fixture(scope="module")
def bu():
    return SimpleTypestateBU(FILE_PROPERTY)


@pytest.fixture(scope="module")
def td():
    return SimpleTypestateTD(FILE_PROPERTY)


def test_condition_c1_exhaustive(td, bu):
    problems = check_c1(
        td, bu, all_prims(VARS, SITES, METHODS), _relations(bu), _states()
    )
    assert not problems, problems[:5]


def test_condition_c2_exhaustive(bu):
    relations = _relations(bu)
    pairs = list(itertools.product(relations, relations))
    problems = check_c2(bu, pairs, _states())
    assert not problems, problems[:5]


def test_condition_c3_exhaustive(bu):
    problems = check_c3(bu, _relations(bu), _predicates(), _states())
    assert not problems, problems[:5]


def test_synthesized_td_equals_handwritten(td, bu):
    """The Section 5.1 recipe reproduces Figure 2's trans exactly."""
    synthesized = SynthesizedTopDown(bu)
    for cmd in all_prims(VARS, SITES, METHODS):
        for sigma in _states():
            assert synthesized.transfer(cmd, sigma) == td.transfer(cmd, sigma), (
                f"divergence at cmd={cmd}, sigma={sigma}"
            )


def test_identity_relation_gamma(bu):
    for sigma in _states():
        assert bu.apply(bu.identity(), sigma) == frozenset({sigma})
