"""Tests for call inlining and worklist-order options."""

import pytest

from repro.framework.denotational import DenotationalInterpreter
from repro.framework.topdown import TopDownEngine
from repro.ir.commands import Call
from repro.ir.inline import call_free, inline_calls
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import (
    all_small_programs,
    diamond_program,
    figure1_program,
    recursive_program,
)


def test_full_inlining_removes_calls():
    inlined = inline_calls(figure1_program())
    assert call_free(inlined["main"])
    # Callee definitions are retained.
    assert "foo" in inlined


def test_inlining_preserves_semantics():
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    for program in all_small_programs():
        if program.is_recursive():
            continue
        inlined = inline_calls(program)
        original = DenotationalInterpreter(program, analysis).run(initial)
        after = DenotationalInterpreter(inlined, analysis).run(initial)
        assert after == original


def test_inlining_recursive_requires_depth():
    program = recursive_program()
    with pytest.raises(ValueError):
        inline_calls(program)
    bounded = inline_calls(program, max_depth=3)
    # Some residual recursive call remains, at greater depth.
    assert not call_free(bounded["main"])


def test_inlining_depth_zero_is_identity():
    program = diamond_program()
    same = inline_calls(program, max_depth=0)
    assert same["main"] == program["main"]


def test_inline_specific_procedure():
    program = diamond_program()
    inlined = inline_calls(program, proc="left")
    assert call_free(inlined["left"])
    assert isinstance(next(program["left"].calls(), None), Call)


def test_intraprocedural_analysis_of_inlined_matches_interprocedural():
    """Inline-then-analyze equals the interprocedural tabulation — the
    classic cross-check between the two strategies."""
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    program = figure1_program()
    inlined = inline_calls(program)
    inter = TopDownEngine(program, analysis).run(initial)
    intra = TopDownEngine(inlined, analysis).run(initial)
    assert intra.exit_states() == inter.exit_states()


@pytest.mark.parametrize("order", ["lifo", "fifo"])
def test_worklist_orders_agree_on_results(order):
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    for program in all_small_programs():
        result = TopDownEngine(program, analysis, order=order).run(initial)
        oracle = DenotationalInterpreter(program, analysis).run(initial)
        assert result.exit_states() == oracle


def test_bad_order_rejected():
    with pytest.raises(ValueError):
        TopDownEngine(figure1_program(), SimpleTypestateTD(FILE_PROPERTY), order="dfs")
