"""Tests for dot export and the multi-property runner."""

from repro.callgraph import build_call_graph
from repro.ir.builder import ProgramBuilder
from repro.ir.cfg import ControlFlowGraphs
from repro.ir.dot import call_graph_to_dot, cfg_to_dot
from repro.typestate.multi import (
    classify_sites_by_method_usage,
    run_multi_property,
)
from repro.typestate.properties import (
    FILE_PROPERTY,
    ITERATOR_PROPERTY,
    all_properties,
)

from tests.helpers import figure1_program


def test_cfg_dot_contains_edges_and_labels():
    cfgs = ControlFlowGraphs(figure1_program())
    dot = cfg_to_dot(cfgs["main"])
    assert dot.startswith('digraph "main"')
    assert "v1 = new h1" in dot
    assert "style=dashed" in dot  # call edges dashed
    assert dot.rstrip().endswith("}")


def test_call_graph_dot_with_highlight():
    graph = build_call_graph(figure1_program())
    dot = call_graph_to_dot(graph, highlight=["foo"])
    assert '"main" -> "foo"' in dot
    assert "lightblue" in dot


def _mixed_program():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("file", "hfile").assign("f", "file")
        p.invoke("f", "open").invoke("f", "close")
        p.new("it", "hiter").assign("i", "it")
        p.invoke("i", "next")  # Iterator violation: next before hasNext
    return b.build()


def test_site_classification_by_method_usage():
    program = _mixed_program()
    sites = classify_sites_by_method_usage(
        program, [FILE_PROPERTY, ITERATOR_PROPERTY]
    )
    assert sites["File"] == frozenset({"hfile"})
    assert sites["Iterator"] == frozenset({"hiter"})


def test_multi_property_run_reports_each_property():
    report = run_multi_property(
        _mixed_program(), [FILE_PROPERTY, ITERATOR_PROPERTY], engine="td"
    )
    assert set(report.reports) == {"File", "Iterator"}
    assert report.report("File").errors == frozenset()
    assert report.report("Iterator").error_sites == frozenset({"hiter"})
    assert report.violated_properties == frozenset({"Iterator"})
    assert report.total_errors >= 1
    assert report.timed_out_properties == frozenset()
    lines = report.summary_lines()
    assert any("Iterator" in line and "error" in line for line in lines)


def test_multi_property_skips_unused_properties():
    report = run_multi_property(_mixed_program(), all_properties(), engine="td")
    # Only File and Iterator methods appear in the program.
    assert set(report.reports) == {"File", "Iterator"}


def test_multi_property_swift_agrees_with_td():
    td = run_multi_property(_mixed_program(), [ITERATOR_PROPERTY], engine="td")
    swift = run_multi_property(
        _mixed_program(), [ITERATOR_PROPERTY], engine="swift", k=1, theta=2
    )
    assert (
        swift.report("Iterator").error_sites == td.report("Iterator").error_sites
    )
