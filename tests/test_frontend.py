"""Tests for the MiniOO frontend: parsing, 0-CFA, lowering, and an
end-to-end compile-then-analyze pipeline."""

import pytest

from repro.frontend import (
    ClassAnalysis,
    LoweringError,
    MiniParseError,
    compile_minioo,
    parse_minioo,
)
from repro.frontend.cfa import scope_of
from repro.ir.commands import Call, Choice, Invoke, New
from repro.ir.validate import validate_program
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY

FILES_EXAMPLE = """
class Stream {
  field name;
  method use(f) {
    f.#open();
    f.#close();
  }
}
class LoggingStream extends Stream {
  method use(f) {
    f.#open();
    f.#read();
    f.#close();
  }
}
main {
  s = new Stream();
  l = new LoggingStream();
  a = new Stream();       // the tracked resource
  if (*) { h = s; } else { h = l; }
  h.use(a);
}
"""


def test_parse_basic_structure():
    mini = parse_minioo(FILES_EXAMPLE)
    assert set(mini.classes) == {"Stream", "LoggingStream"}
    assert mini.classes["LoggingStream"].superclass == "Stream"
    assert "use" in mini.classes["Stream"].methods
    assert len(mini.main.stmts) == 5


def test_parse_errors():
    with pytest.raises(MiniParseError):
        parse_minioo("class A {} main { x = ; }")
    with pytest.raises(MiniParseError):
        parse_minioo("class A extends Missing {} main { }")
    with pytest.raises(MiniParseError):
        parse_minioo("class A {}")  # no main
    with pytest.raises(MiniParseError):
        parse_minioo("class A extends B {} class B extends A {} main { }")


def test_method_resolution_walks_hierarchy():
    mini = parse_minioo(FILES_EXAMPLE)
    assert mini.resolve_method("LoggingStream", "use") == "LoggingStream"
    assert mini.resolve_method("Stream", "use") == "Stream"
    assert mini.resolve_method("Stream", "absent") is None
    assert set(mini.subclasses_of("Stream")) == {"Stream", "LoggingStream"}


def test_cfa_receiver_sets():
    mini = parse_minioo(FILES_EXAMPLE)
    cfa = ClassAnalysis(mini)
    assert cfa.classes_of("main", "h") == frozenset({"Stream", "LoggingStream"})
    assert cfa.classes_of("main", "a") == frozenset({"Stream"})
    # The parameter f receives the argument's classes in both targets.
    assert cfa.classes_of(scope_of("Stream", "use"), "f") == frozenset({"Stream"})


def test_cfa_field_based_heap():
    mini = parse_minioo(
        """
        class Box { field val; }
        class Thing { }
        main {
          b = new Box();
          t = new Thing();
          b.val = t;
          u = b.val;
        }
        """
    )
    cfa = ClassAnalysis(mini)
    assert cfa.classes_of("main", "u") == frozenset({"Thing"})


def test_lowering_produces_valid_ir():
    program = compile_minioo(FILES_EXAMPLE)
    validate_program(program)
    assert set(program) == {"main", "Stream$use", "LoggingStream$use"}
    # The virtual call lowers to a two-way dispatch choice.
    dispatches = [
        cmd
        for cmd in [program["main"]]
        for cmd in ([cmd] if isinstance(cmd, Choice) else getattr(cmd, "parts", []))
        if isinstance(cmd, Choice)
    ]
    call_targets = {c.proc for c in program["main"].calls()}
    assert call_targets == {"Stream$use", "LoggingStream$use"}


def test_lowering_allocation_sites_are_numbered():
    program = compile_minioo(FILES_EXAMPLE)
    sites = program.allocation_sites()
    assert "Stream@0" in sites and "Stream@1" in sites
    assert "LoggingStream@0" in sites


def test_lowering_rejects_unresolved_calls():
    source = "class A { } main { x = new A(); x.missing(); }"
    with pytest.raises(LoweringError):
        compile_minioo(source)
    # Permissive mode turns it into a no-op instead.
    program = compile_minioo(source, allow_unresolved_calls=True)
    assert list(program["main"].calls()) == []


def test_lowering_rejects_mid_block_return():
    source = """
    class A { method m() { return; x = new A(); } }
    main { a = new A(); a.m(); }
    """
    with pytest.raises(LoweringError):
        compile_minioo(source)


def test_lowering_arity_mismatch():
    source = """
    class A { method m(p) { return; } }
    main { a = new A(); a.m(); }
    """
    with pytest.raises(LoweringError):
        compile_minioo(source)


def test_return_value_flows_back():
    source = """
    class Factory {
      method make() {
        x = new Factory();
        return x;
      }
    }
    main {
      f = new Factory();
      y = f.make();
      z = y;
    }
    """
    mini = parse_minioo(source)
    cfa = ClassAnalysis(mini)
    assert cfa.classes_of("main", "z") == frozenset({"Factory"})
    program = compile_minioo(source)
    validate_program(program)


def test_end_to_end_typestate_verification():
    """Compile MiniOO and verify the File property on the result: both
    use() variants open before read/close, so no errors; TD and SWIFT
    agree."""
    program = compile_minioo(FILES_EXAMPLE)
    td = run_typestate(program, FILE_PROPERTY, engine="td", domain="full")
    swift = run_typestate(
        program, FILE_PROPERTY, engine="swift", domain="full", k=1, theta=2
    )
    assert td.errors == frozenset()
    assert swift.error_sites == td.error_sites


def test_end_to_end_catches_protocol_violation():
    source = """
    class User {
      method bad(f) {
        f.#close();
      }
    }
    main {
      u = new User();
      r = new User();
      r.#open();
      u.bad(r);
      u.bad(r);
    }
    """
    program = compile_minioo(source)
    td = run_typestate(program, FILE_PROPERTY, engine="td", domain="full")
    # close; close on an opened file errors on the second close.
    assert td.error_sites == frozenset({"User@1"})
