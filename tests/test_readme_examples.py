"""Executable documentation: the README's code snippets must work."""

from repro.frontend import compile_minioo
from repro.ir.builder import ProgramBuilder
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY


def test_readme_quickstart_snippet():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v1", "h1").assign("f", "v1").call("foo")
        p.new("v2", "h2").assign("f", "v2").call("foo")
        p.new("v3", "h3").assign("f", "v3").call("foo")
    with b.proc("foo") as p:
        p.invoke("f", "open").invoke("f", "close")

    report = run_typestate(
        b.build(), FILE_PROPERTY, engine="swift", domain="full", k=2, theta=2
    )
    assert report.errors == frozenset()
    assert report.bu_summaries == 2  # B1/B2 kept, B3/B4 pruned


def test_readme_minioo_snippet():
    program = compile_minioo(
        """
        class Writer { method flush(f) { f.#open(); f.#close(); } }
        main { w = new Writer(); r = new Writer(); w.flush(r); }
        """
    )
    assert "Writer$flush" in program
    report = run_typestate(program, FILE_PROPERTY, engine="swift", domain="full")
    assert report.errors == frozenset()


def test_examples_are_runnable_modules():
    """Every example script imports cleanly (its main() is exercised by
    the example-specific tests and by CI running the scripts)."""
    import importlib.util
    from pathlib import Path

    examples = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
    assert len(examples) >= 6
    for path in examples:
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{path.name} lacks a main()"
