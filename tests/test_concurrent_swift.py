"""Tests for the asynchronous SWIFT variant (Section 7 future work)."""

from concurrent.futures import Future

import pytest

from repro.callgraph.scc import condensation
from repro.framework.concurrent import (
    ConcurrentHarvestError,
    ConcurrentSwiftEngine,
    _SccPlan,
)
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.framework.tracing import RingSink
from repro.ir.builder import ProgramBuilder
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_small_programs, figure1_program


def layered_program():
    """Three call-graph layers: triggers on ``mid`` span two waves."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v1", "h1").assign("f", "v1").call("mid")
        p.new("v2", "h2").assign("f", "v2").call("mid")
        p.new("v3", "h3").assign("f", "v3").call("mid")
    with b.proc("mid") as p:
        p.call("leaf")
    with b.proc("leaf") as p:
        p.invoke("f", "open").invoke("f", "close")
    return b.build()


def _run_concurrent(program, k=1, theta=2, max_workers=2):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    engine = ConcurrentSwiftEngine(
        program, td_analysis, bu_analysis, k=k, theta=theta, max_workers=max_workers
    )
    result = engine.run(initial)
    td_result = TopDownEngine(program, td_analysis).run(initial)
    return result, td_result


@pytest.mark.parametrize("program", all_small_programs())
def test_concurrent_swift_equivalent_to_td(program):
    result, td_result = _run_concurrent(program)
    assert result.exit_states() == td_result.exit_states()
    for point in result.cfgs["main"].points:
        assert result.states_at(point) == td_result.states_at(point)


def test_concurrent_swift_repeatable_verdicts():
    """Summary installation timing may vary; client verdicts must not."""
    program = figure1_program()
    exits = {tuple(sorted(map(str, _run_concurrent(program)[0].exit_states())))
             for _ in range(5)}
    assert len(exits) == 1


def test_concurrent_on_generated_benchmark():
    from repro.alias import points_to_oracle
    from repro.bench import load_benchmark
    from repro.typestate.full import (
        FullTypestateBU,
        FullTypestateTD,
        full_bootstrap_state,
    )

    benchmark = load_benchmark("toba-s")
    program = benchmark.program
    oracle = points_to_oracle(program)
    variables = program.variables()
    td_analysis = FullTypestateTD(FILE_PROPERTY, oracle, variables=variables)
    bu_analysis = FullTypestateBU(FILE_PROPERTY, oracle, variables=variables)
    init = full_bootstrap_state(FILE_PROPERTY)
    concurrent = ConcurrentSwiftEngine(
        program, td_analysis, bu_analysis, k=5, theta=1
    ).run([init])
    sequential = TopDownEngine(program, td_analysis).run([init])
    assert concurrent.exit_states() == sequential.exit_states()


def test_concurrent_executor_cleaned_up():
    program = figure1_program()
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    engine = ConcurrentSwiftEngine(program, td_analysis, bu_analysis, k=1)
    engine.run([bootstrap_state(FILE_PROPERTY)])
    assert engine._executor is None
    assert not engine._in_flight


# -- worker failure handling ---------------------------------------------------------
class _ExplodingWorkerEngine(ConcurrentSwiftEngine):
    """Every bottom-up worker dies with the same ValueError."""

    @staticmethod
    def _timed_analyze(engine, targets, external):
        raise ValueError("worker boom")


def _exploding_engine(k=1):
    return _ExplodingWorkerEngine(
        figure1_program(),
        SimpleTypestateTD(FILE_PROPERTY),
        SimpleTypestateBU(FILE_PROPERTY),
        k=k,
    )


def test_worker_exception_raises_aggregate():
    """A failing bottom-up worker must surface as ConcurrentHarvestError
    carrying the original exception (previously it could be raised from
    inside run()'s finally block, masking the run's own outcome)."""
    engine = _exploding_engine()
    with pytest.raises(ConcurrentHarvestError) as info:
        engine.run([bootstrap_state(FILE_PROPERTY)])
    assert info.value.errors
    assert all(isinstance(e, ValueError) for e in info.value.errors)
    assert "worker boom" in str(info.value)


def test_worker_exception_still_cleans_up_executor():
    engine = _exploding_engine()
    with pytest.raises(ConcurrentHarvestError):
        engine.run([bootstrap_state(FILE_PROPERTY)])
    assert engine._executor is None
    assert not engine._in_flight
    assert not engine._pending_procs


def test_run_exception_not_masked_by_worker_failure(monkeypatch):
    """When the tabulation itself raises, a simultaneously failing
    worker must not replace that exception (the finally-block bug)."""

    class TabulationBoom(Exception):
        pass

    engine = _exploding_engine()

    def failing_run(initial_states):
        # Simulate a trigger having submitted a doomed job, then the
        # tabulation loop dying: the doomed future is in flight when
        # run()'s cleanup executes.
        future = engine._executor.submit(engine._timed_analyze, None, frozenset(), {})
        engine._in_flight.append(("foo", frozenset({"foo"}), future))
        raise TabulationBoom()

    monkeypatch.setattr(SwiftEngine, "run", lambda self, init: failing_run(init))
    with pytest.raises(TabulationBoom):
        engine.run([bootstrap_state(FILE_PROPERTY)])
    # Cleanup still happened even though the worker error was dropped in
    # favour of the run's own exception.
    assert engine._executor is None
    assert not engine._in_flight


# -- SCC wavefront submission --------------------------------------------------------
class _SyncExecutor:
    """Runs submissions inline and hands back completed futures, so
    wavefront bookkeeping can be driven deterministically."""

    def submit(self, fn, *args):
        future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # pragma: no cover - not hit here
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True):
        pass


def _bare_engine(program, **kwargs):
    return ConcurrentSwiftEngine(
        program,
        SimpleTypestateTD(FILE_PROPERTY),
        SimpleTypestateBU(FILE_PROPERTY),
        k=1,
        **kwargs,
    )


def test_scc_plan_unsubmitted_procs():
    plan = _SccPlan("r", [[("leaf",)], [("a",), ("b",)], [("top",)]])
    assert plan.unsubmitted_procs() == frozenset({"a", "b", "top"})
    plan.wave = 1
    assert plan.unsubmitted_procs() == frozenset({"top"})
    plan.wave = 2
    assert plan.unsubmitted_procs() == frozenset()


def test_abort_plan_releases_pending_and_optionally_disables():
    engine = _bare_engine(layered_program())
    plan = _SccPlan("mid", [[("leaf",)], [("mid",)]])
    engine._pending_procs = {"leaf", "mid"}
    engine._abort_plan(plan, disable=True)
    assert plan.aborted
    # The in-flight wave keeps its reservation (its harvest clears it);
    # the never-submitted wave is released and disabled.
    assert engine._pending_procs == {"leaf"}
    assert engine._bu_disabled == {"mid"}
    # A second abort (another job of the same wave failing) is a no-op.
    engine._bu_disabled.clear()
    engine._abort_plan(plan, disable=True)
    assert engine._bu_disabled == set()


def test_harvest_advances_to_next_wave():
    """Once a wave has fully landed, the harvest submits the next one,
    whose snapshot then contains the previous wave's summaries."""
    program = layered_program()
    engine = _bare_engine(program)
    engine._executor = _SyncExecutor()
    targets = frozenset({"mid", "leaf"})
    plan = _SccPlan("mid", condensation(program).wavefronts(targets))
    assert len(plan.waves) == 2
    engine._pending_procs |= targets
    engine._submit_wave(plan)
    assert [t for (_, t, _) in engine._in_flight] == [frozenset({"leaf"})]
    root, job_targets, future = engine._in_flight.pop()
    assert engine._harvest(root, job_targets, future, install=True) is None
    assert "leaf" in engine.bu
    # The harvest advanced the plan and submitted wave 1 (mid).
    assert plan.wave == 1
    assert [t for (_, t, _) in engine._in_flight] == [frozenset({"mid"})]
    root, job_targets, future = engine._in_flight.pop()
    assert engine._harvest(root, job_targets, future, install=True) is None
    assert "mid" in engine.bu
    assert not engine._pending_procs
    assert not engine._job_plan
    engine._executor = None


def test_wavefront_engine_matches_td_and_emits_scc_events():
    program = layered_program()
    sink = RingSink()
    engine = _bare_engine(program, max_workers=2, sink=sink)
    initial = [bootstrap_state(FILE_PROPERTY)]
    result = engine.run(initial)
    td_result = TopDownEngine(program, SimpleTypestateTD(FILE_PROPERTY)).run(initial)
    assert result.exit_states() == td_result.exit_states()
    submitted = [e for e in sink.events if e.kind == "bu_scc_submitted"]
    assert submitted  # at least one trigger fired and was wavefronted
    for event in submitted:
        assert event.data["procs"]
        assert event.data["wave"] >= 0
    # Per root, wave numbers never decrease in emission order.
    by_root = {}
    for event in submitted:
        waves = by_root.setdefault(event.proc, [])
        if waves:
            assert event.data["wave"] >= waves[-1]
        waves.append(event.data["wave"])


def test_concurrent_accepts_warm_start_and_folds_store_counters(tmp_path):
    """The harvest's field-iterating Metrics.merge must fold the store
    counters, and ``preload=`` must pass through the **kwargs path."""
    from repro.incremental import (
        Codec,
        ProgramFingerprints,
        SummaryStore,
        build_snapshot,
        build_warm_start,
        config_fingerprint,
        diff_fingerprints,
    )

    program = figure1_program()
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    codec = Codec("simple", bu_analysis)
    config, config_fp = config_fingerprint(
        FILE_PROPERTY, domain="simple", engine="swift", k=1, theta=2
    )
    fps = ProgramFingerprints(program)
    cold = SwiftEngine(program, td_analysis, bu_analysis, k=1, theta=2).run(initial)
    store = SummaryStore(tmp_path)
    store.save(build_snapshot(config, config_fp, fps, cold, codec))
    snapshot = store.load(config_fp)
    warm = build_warm_start(
        snapshot, diff_fingerprints(snapshot.fingerprints, fps), codec
    )
    engine = ConcurrentSwiftEngine(
        program, td_analysis, bu_analysis, k=1, theta=2, max_workers=2, preload=warm
    )
    result = engine.run(initial)
    assert result.exit_states() == cold.exit_states()
    assert result.metrics.store_hits > 0
    assert result.metrics.total_work <= 0.10 * cold.metrics.total_work
