"""Tests for the asynchronous SWIFT variant (Section 7 future work)."""

import pytest

from repro.framework.concurrent import ConcurrentSwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import all_small_programs, figure1_program


def _run_concurrent(program, k=1, theta=2, max_workers=2):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    engine = ConcurrentSwiftEngine(
        program, td_analysis, bu_analysis, k=k, theta=theta, max_workers=max_workers
    )
    result = engine.run(initial)
    td_result = TopDownEngine(program, td_analysis).run(initial)
    return result, td_result


@pytest.mark.parametrize("program", all_small_programs())
def test_concurrent_swift_equivalent_to_td(program):
    result, td_result = _run_concurrent(program)
    assert result.exit_states() == td_result.exit_states()
    for point in result.cfgs["main"].points:
        assert result.states_at(point) == td_result.states_at(point)


def test_concurrent_swift_repeatable_verdicts():
    """Summary installation timing may vary; client verdicts must not."""
    program = figure1_program()
    exits = {tuple(sorted(map(str, _run_concurrent(program)[0].exit_states())))
             for _ in range(5)}
    assert len(exits) == 1


def test_concurrent_on_generated_benchmark():
    from repro.alias import points_to_oracle
    from repro.bench import load_benchmark
    from repro.typestate.full import (
        FullTypestateBU,
        FullTypestateTD,
        full_bootstrap_state,
    )

    benchmark = load_benchmark("toba-s")
    program = benchmark.program
    oracle = points_to_oracle(program)
    variables = program.variables()
    td_analysis = FullTypestateTD(FILE_PROPERTY, oracle, variables=variables)
    bu_analysis = FullTypestateBU(FILE_PROPERTY, oracle, variables=variables)
    init = full_bootstrap_state(FILE_PROPERTY)
    concurrent = ConcurrentSwiftEngine(
        program, td_analysis, bu_analysis, k=5, theta=1
    ).run([init])
    sequential = TopDownEngine(program, td_analysis).run([init])
    assert concurrent.exit_states() == sequential.exit_states()


def test_concurrent_executor_cleaned_up():
    program = figure1_program()
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    engine = ConcurrentSwiftEngine(program, td_analysis, bu_analysis, k=1)
    engine.run([bootstrap_state(FILE_PROPERTY)])
    assert engine._executor is None
    assert not engine._in_flight
