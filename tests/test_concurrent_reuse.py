"""Concurrent-reuse hammer tests: the single-process assumptions the
service daemon broke, held down.

Three seams of the reuse layer used to assume one request at a time:
the warm decode cache was a bare dict (unlocked check-then-insert,
FIFO eviction), store temp files were keyed by pid alone (two threads
saving one snapshot collided on the tmp path), and the JSONL trace
sink only flushed on close (a long-lived daemon's trace stayed
empty).  These tests run the real ``analyze_with_store`` loop from
many threads — same config, different configs — and assert results,
snapshots, and cache behaviour are exactly what serial runs produce.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.frontend import compile_minioo
from repro.framework.tracing import JsonlSink, TraceEvent, read_jsonl
from repro.incremental import SummaryStore, WarmCache, analyze_with_store
from repro.incremental.store import Snapshot
from repro.typestate.properties import FILE_PROPERTY

MINI = """
class Writer { method flush(f) { f.#open(); f.#close(); } }
class Helper { method run(g) { g.#open(); g.#close(); } }
main {
  w = new Writer();
  r = new Writer();
  h = new Helper();
  w.flush(r);
  h.run(r);
}
"""

BAD_MINI = """
class Writer { method close2(f) { f.#close(); f.#close(); } }
main { w = new Writer(); r = new Writer(); r.#open(); w.close2(r); }
"""


@pytest.fixture
def program():
    return compile_minioo(MINI)


def _snapshot_bytes(store_dir) -> dict:
    """Snapshot file name -> bytes, for torn-write comparisons."""
    store = SummaryStore(store_dir)
    return {path.name: path.read_bytes() for path in store.snapshot_paths()}


# -- threaded analyze_with_store ------------------------------------------------------
@pytest.mark.parametrize("engine", ["td", "swift"])
def test_hammer_same_config_matches_serial(tmp_path, program, engine):
    serial_store = SummaryStore(tmp_path / "serial")
    serial_cache = WarmCache(capacity=8)
    serial = analyze_with_store(
        program, FILE_PROPERTY, serial_store, engine=engine,
        domain="simple", warm_cache=serial_cache,
    )

    store = SummaryStore(tmp_path / "hammer")
    cache = WarmCache(capacity=8)
    barrier = threading.Barrier(8)

    def run(_):
        barrier.wait()
        out = []
        for _ in range(4):
            out.append(
                analyze_with_store(
                    program, FILE_PROPERTY, store, engine=engine,
                    domain="simple", warm_cache=cache,
                )
            )
        return out

    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = [o for sub in pool.map(run, range(8)) for o in sub]

    for outcome in outcomes:
        assert outcome.report.errors == serial.report.errors
        assert not outcome.report.timed_out
    # No torn snapshot: the surviving file parses and is byte-identical
    # to the serial store's (canonical encoding is deterministic).
    assert _snapshot_bytes(tmp_path / "hammer") == _snapshot_bytes(
        tmp_path / "serial"
    )
    # No stranded temp files from concurrent saves.
    assert not list((tmp_path / "hammer").glob("*.tmp.*"))
    # Warm runs actually hit the shared cache.
    assert cache.stats()["hits"] > 0


def test_hammer_different_configs_keep_their_snapshots(tmp_path, program):
    """Concurrent runs under different configs never cross-contaminate."""
    configs = [
        {"engine": "td", "domain": "simple"},
        {"engine": "swift", "domain": "simple", "k": 2, "theta": 1},
        {"engine": "swift", "domain": "simple", "k": 5, "theta": 2},
        {"engine": "swift", "domain": "simple", "scheduler": "fifo"},
    ]
    serial = {}
    for i, kwargs in enumerate(configs):
        store = SummaryStore(tmp_path / f"serial{i}")
        serial[i] = analyze_with_store(
            program, FILE_PROPERTY, store, warm_cache=WarmCache(4), **kwargs
        )

    store = SummaryStore(tmp_path / "shared")
    cache = WarmCache(capacity=2)  # smaller than the config count: evicts
    barrier = threading.Barrier(len(configs) * 2)

    def run(i):
        barrier.wait()
        out = []
        for _ in range(3):
            out.append(
                analyze_with_store(
                    program, FILE_PROPERTY, store,
                    warm_cache=cache, **configs[i % len(configs)],
                )
            )
        return i % len(configs), out

    with ThreadPoolExecutor(max_workers=len(configs) * 2) as pool:
        results = list(pool.map(run, range(len(configs) * 2)))

    fps = set()
    for i, outcomes in results:
        for outcome in outcomes:
            assert outcome.report.errors == serial[i].report.errors
            assert outcome.config_fp == serial[i].config_fp
            fps.add(outcome.config_fp)
    assert len(fps) == len(configs)  # one snapshot per distinct config
    shared = _snapshot_bytes(tmp_path / "shared")
    assert len(shared) == len(configs)
    for i in range(len(configs)):
        for name, data in _snapshot_bytes(tmp_path / f"serial{i}").items():
            assert shared[name] == data
    assert not list((tmp_path / "shared").glob("*.tmp.*"))


def test_hammered_snapshots_parse_and_roundtrip(tmp_path, program):
    store = SummaryStore(tmp_path)
    cache = WarmCache(4)

    def run(_):
        return analyze_with_store(
            program, FILE_PROPERTY, store, engine="swift",
            domain="simple", warm_cache=cache,
        )

    with ThreadPoolExecutor(max_workers=6) as pool:
        list(pool.map(run, range(12)))
    for path in store.snapshot_paths():
        snap = Snapshot.from_bytes(path.read_bytes())
        assert snap.to_bytes() == path.read_bytes()  # canonical on disk


# -- WarmCache unit behaviour ---------------------------------------------------------
def test_warm_cache_is_true_lru():
    cache = WarmCache(capacity=2)
    cache.insert(("root", "a"), 1, {}, "snap-a", None, "warm-a")
    cache.insert(("root", "b"), 1, {}, "snap-b", None, "warm-b")
    # Hit on a refreshes its recency, so inserting c evicts b, not a.
    assert cache.lookup(("root", "a"), 1, {}) == ("snap-a", None, "warm-a")
    cache.insert(("root", "c"), 1, {}, "snap-c", None, "warm-c")
    assert cache.lookup(("root", "a"), 1, {}) is not None
    assert cache.lookup(("root", "b"), 1, {}) is None
    assert cache.lookup(("root", "c"), 1, {}) is not None
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["entries"] == 2


def test_warm_cache_stale_signature_misses_without_eviction():
    cache = WarmCache(capacity=2)
    cache.insert(("root", "a"), (1, 10), {"p": "x"}, "s", None, "w")
    assert cache.lookup(("root", "a"), (2, 10), {"p": "x"}) is None  # new file
    assert cache.lookup(("root", "a"), (1, 10), {"p": "y"}) is None  # new prog
    assert cache.lookup(("root", "a"), (1, 10), {"p": "x"}) is not None
    assert ("root", "a") in cache
    cache.invalidate(("root", "a"))
    assert ("root", "a") not in cache


def test_warm_cache_concurrent_churn_stays_bounded():
    cache = WarmCache(capacity=4)

    def churn(seed):
        for i in range(200):
            key = ("root", f"fp{(seed * 7 + i) % 10}")
            if cache.lookup(key, 1, {}) is None:
                cache.insert(key, 1, {}, f"s{i}", None, f"w{i}")
        return True

    with ThreadPoolExecutor(max_workers=8) as pool:
        assert all(pool.map(churn, range(8)))
    assert len(cache) <= 4
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == 8 * 200


def test_warm_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        WarmCache(capacity=0)


# -- store temp-file naming -----------------------------------------------------------
def test_concurrent_saves_leave_no_tmp_and_a_complete_file(tmp_path, program):
    """Many threads saving the same snapshot: last complete write wins."""
    store = SummaryStore(tmp_path)
    outcome = analyze_with_store(
        program, FILE_PROPERTY, store, engine="td", domain="simple",
        warm_cache=WarmCache(2),
    )
    snap = store.load(outcome.config_fp)
    expected = snap.to_bytes()
    barrier = threading.Barrier(8)

    def save(_):
        barrier.wait()
        for _ in range(5):
            store.save(snap)
        return True

    with ThreadPoolExecutor(max_workers=8) as pool:
        assert all(pool.map(save, range(8)))
    path = store.path_for(outcome.config_fp)
    assert path.read_bytes() == expected
    assert not list(tmp_path.glob("*.tmp.*"))


def test_gc_still_collects_stranded_tmp_files(tmp_path):
    store = SummaryStore(tmp_path)
    tmp_path.mkdir(exist_ok=True)
    stranded = tmp_path / "snapshot-deadbeef.jsonl.tmp.123-456-7"
    stranded.write_text("partial")
    legacy = tmp_path / "snapshot-cafebabe.jsonl.tmp.999"
    legacy.write_text("partial")
    removed = store.gc()
    assert stranded in removed and legacy in removed
    assert not stranded.exists() and not legacy.exists()


# -- JsonlSink periodic flushing ------------------------------------------------------
def test_jsonl_sink_flushes_before_close(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path, flush_every=4)
    for i in range(4):
        sink.emit(TraceEvent("propagate", f"p{i}"))
    # Four events crossed the flush bound: the file is readable *now*,
    # without close() — the daemon-crash case.
    lines = path.read_text().splitlines()
    assert len(lines) == 4
    sink.emit(TraceEvent("propagate", "p4"))
    sink.flush()
    assert len(path.read_text().splitlines()) == 5
    sink.close()


def test_jsonl_sink_bytes_identical_across_flush_intervals(tmp_path, program):
    from repro.typestate.client import run_typestate

    paths = []
    for flush_every in (1, 3, 128):
        path = tmp_path / f"trace-{flush_every}.jsonl"
        sink = JsonlSink(path, flush_every=flush_every)
        run_typestate(
            program, FILE_PROPERTY, engine="swift", domain="simple", sink=sink
        )
        sink.close()
        paths.append(path)
    reference = paths[0].read_bytes()
    assert reference  # the run actually traced something
    for path in paths[1:]:
        assert path.read_bytes() == reference
    for event in read_jsonl(paths[0]):
        assert event.kind
    assert json.loads(paths[0].read_text().splitlines()[0])["seq"] == 0


def test_jsonl_sink_rejects_bad_flush_interval(tmp_path):
    with pytest.raises(ValueError):
        JsonlSink(tmp_path / "t.jsonl", flush_every=0)
