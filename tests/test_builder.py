"""Unit tests for the fluent program builder."""

import pytest

from repro.ir.builder import BlockBuilder, ChoiceBuilder, ProgramBuilder
from repro.ir.commands import Assign, Call, Choice, Invoke, New, Seq, Skip, Star


def test_block_builder_chains():
    block = BlockBuilder()
    block.new("v", "h").assign("f", "v").invoke("f", "open").skip().call("p")
    cmd = block.command()
    assert isinstance(cmd, Seq)
    assert cmd.parts == (
        New("v", "h"),
        Assign("f", "v"),
        Invoke("f", "open"),
        Skip(),
        Call("p"),
    )


def test_empty_block_is_skip():
    assert BlockBuilder().command() == Skip()


def test_loop_context_manager():
    block = BlockBuilder()
    with block.loop() as body:
        body.invoke("f", "open")
    cmd = block.command()
    assert isinstance(cmd, Star)
    assert cmd.body == Invoke("f", "open")


def test_choose_context_manager():
    block = BlockBuilder()
    with block.choose() as c:
        with c.branch() as a:
            a.skip()
        with c.branch() as b:
            b.invoke("f", "open")
    cmd = block.command()
    assert isinstance(cmd, Choice)
    assert len(cmd.alternatives) == 2


def test_choice_builder_requires_two_branches():
    c = ChoiceBuilder()
    with c.branch() as only:
        only.skip()
    with pytest.raises(ValueError):
        c.command()


def test_program_builder_duplicate_proc_rejected():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.skip()
    with pytest.raises(ValueError):
        with b.proc("main") as p:
            p.skip()
    with pytest.raises(ValueError):
        b.define("main", Skip())


def test_program_builder_validates_calls():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.call("missing")
    with pytest.raises(Exception):
        b.build()
    assert b.build(validate=False)["main"] == Call("missing")


def test_program_builder_metadata():
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.skip()
    program = b.build(label="unit-test")
    assert program.metadata["label"] == "unit-test"


def test_append_arbitrary_command():
    block = BlockBuilder()
    block.append(Star(Skip()))
    assert block.command() == Star(Skip())


def test_store_and_load_builders():
    block = BlockBuilder()
    block.store("box", "val", "v").load("w", "box", "val")
    parts = block.command().parts
    assert str(parts[0]) == "box.val = v"
    assert str(parts[1]) == "w = box.val"
