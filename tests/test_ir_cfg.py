"""Unit tests for CFG construction (repro.ir.cfg)."""

from repro.ir.cfg import CFG, ControlFlowGraphs
from repro.ir.commands import Assign, Call, Invoke, New, Skip, choice, seq, star

from tests.helpers import figure1_program


def test_single_prim_edge():
    cfg = CFG("p", Assign("a", "b"))
    assert cfg.entry != cfg.exit
    edges = list(cfg.edges())
    assert len(edges) == 1
    assert edges[0].label == Assign("a", "b")


def test_seq_chains():
    cfg = CFG("p", seq(Assign("a", "b"), Assign("b", "c"), Assign("c", "a")))
    labels = [e.label for e in cfg.edges()]
    assert labels == [Assign("a", "b"), Assign("b", "c"), Assign("c", "a")]
    # entry -> x -> y -> exit: 4 points.
    assert len(cfg) == 4


def test_choice_shares_entry_and_exit():
    cfg = CFG("p", choice(Assign("a", "b"), Assign("a", "c")))
    entry_edges = cfg.successors(cfg.entry)
    assert len(entry_edges) == 2
    exit_preds = cfg.predecessors(cfg.exit)
    assert len(exit_preds) == 2


def test_star_has_back_edge():
    cfg = CFG("p", star(Assign("a", "b")))
    # The loop head must have >= 2 incoming edges (entry + back edge)
    heads = [p for p in cfg.points if len(cfg.predecessors(p)) >= 2]
    assert heads, "no loop head found"


def test_call_edge_flag():
    cfg = CFG("p", seq(Call("q"), Skip()))
    call_edges = list(cfg.call_edges())
    assert len(call_edges) == 1
    assert call_edges[0].label.proc == "q"


def test_cfg_points_unique_per_proc():
    cfg = CFG("p", seq(Skip(), Skip()))
    assert len(set(cfg.points)) == len(cfg.points)
    assert all(pt.proc == "p" for pt in cfg.points)


def test_control_flow_graphs_cache():
    program = figure1_program()
    cfgs = ControlFlowGraphs(program)
    assert cfgs["main"] is cfgs["main"]
    assert cfgs.entry("foo").proc == "foo"
    assert cfgs.exit("foo").proc == "foo"
    assert cfgs.total_points() == sum(len(cfgs[p]) for p in program)


def test_every_nonexit_point_has_successor():
    program = figure1_program()
    cfgs = ControlFlowGraphs(program)
    for proc in program:
        cfg = cfgs[proc]
        for point in cfg.points:
            if point != cfg.exit:
                assert cfg.successors(point), f"dead point {point}"


# -- loop structure (back edges / widening points, DESIGN §14) ------------------


def test_straight_line_has_no_back_edges():
    cfg = CFG("p", seq(Assign("a", "b"), Assign("b", "c")))
    assert cfg.back_edges() == []
    assert cfg.loop_heads() == ()


def test_choice_has_no_back_edges():
    cfg = CFG("p", choice(Assign("a", "b"), Assign("a", "c")))
    assert cfg.back_edges() == []
    assert cfg.loop_heads() == ()


def test_single_star_back_edge_and_head():
    cfg = CFG("p", star(Assign("a", "b")))
    back = cfg.back_edges()
    assert len(back) == 1
    (edge,) = back
    # The lowering's back edge is tail --skip--> head, and the head is
    # the loop's join point: >= 2 predecessors and an edge to the exit.
    assert isinstance(edge.label, Skip)
    assert cfg.loop_heads() == (edge.target,)
    assert len(cfg.predecessors(edge.target)) >= 2
    assert any(e.target == cfg.exit for e in cfg.successors(edge.target))


def test_nested_stars_two_distinct_heads():
    cfg = CFG("p", star(seq(Assign("a", "b"), star(Assign("b", "c")))))
    back = cfg.back_edges()
    assert len(back) == 2
    heads = cfg.loop_heads()
    assert len(heads) == 2
    assert len(set(heads)) == 2
    assert set(heads) == {edge.target for edge in back}


def test_sequential_stars_heads_in_flow_order():
    cfg = CFG("p", seq(star(Assign("a", "b")), star(Assign("b", "c"))))
    heads = cfg.loop_heads()
    assert len(heads) == 2
    # First-discovery order follows the flow: the first loop's head has
    # the smaller point index.
    assert heads[0].index < heads[1].index


def test_triple_nest_every_cycle_cut():
    cfg = CFG("p", star(star(star(Assign("a", "b")))))
    heads = set(cfg.loop_heads())
    assert len(heads) == 3
    for edge in cfg.back_edges():
        assert edge.target in heads


def test_back_edges_deterministic_across_builds():
    cmd = star(seq(Assign("a", "b"), choice(star(Assign("b", "c")), Skip())))
    first = [(e.source.index, e.target.index) for e in CFG("p", cmd).back_edges()]
    second = [(e.source.index, e.target.index) for e in CFG("p", cmd).back_edges()]
    assert first and first == second


def test_irreducible_graph_back_edge_cuts_the_cycle():
    # Hand-build an irreducible-ish shape the structured lowering never
    # produces: a two-node cycle entered at both nodes.  back_edges()
    # makes no reducibility assumption — it must still report a back
    # edge whose target cuts the cycle, deterministically.
    cfg = CFG("p", Skip())
    a = cfg._fresh()
    b = cfg._fresh()
    cfg._edge(cfg.entry, Skip(), a)
    cfg._edge(cfg.entry, Skip(), b)
    cfg._edge(a, Skip(), b)
    cfg._edge(b, Skip(), a)
    back = cfg.back_edges()
    assert len(back) == 1
    assert back[0].target in (a, b)  # some node of the cycle is cut
    assert cfg.loop_heads() == (back[0].target,)
    # Deterministic across calls (cached) and across identical builds.
    assert cfg.back_edges() == back


def test_loop_heads_cached_and_stable():
    cfg = CFG("p", star(Assign("a", "b")))
    assert cfg.loop_heads() == cfg.loop_heads()
    assert cfg.back_edges() == cfg.back_edges()
