"""Unit tests for CFG construction (repro.ir.cfg)."""

from repro.ir.cfg import CFG, ControlFlowGraphs
from repro.ir.commands import Assign, Call, Invoke, New, Skip, choice, seq, star

from tests.helpers import figure1_program


def test_single_prim_edge():
    cfg = CFG("p", Assign("a", "b"))
    assert cfg.entry != cfg.exit
    edges = list(cfg.edges())
    assert len(edges) == 1
    assert edges[0].label == Assign("a", "b")


def test_seq_chains():
    cfg = CFG("p", seq(Assign("a", "b"), Assign("b", "c"), Assign("c", "a")))
    labels = [e.label for e in cfg.edges()]
    assert labels == [Assign("a", "b"), Assign("b", "c"), Assign("c", "a")]
    # entry -> x -> y -> exit: 4 points.
    assert len(cfg) == 4


def test_choice_shares_entry_and_exit():
    cfg = CFG("p", choice(Assign("a", "b"), Assign("a", "c")))
    entry_edges = cfg.successors(cfg.entry)
    assert len(entry_edges) == 2
    exit_preds = cfg.predecessors(cfg.exit)
    assert len(exit_preds) == 2


def test_star_has_back_edge():
    cfg = CFG("p", star(Assign("a", "b")))
    # The loop head must have >= 2 incoming edges (entry + back edge)
    heads = [p for p in cfg.points if len(cfg.predecessors(p)) >= 2]
    assert heads, "no loop head found"


def test_call_edge_flag():
    cfg = CFG("p", seq(Call("q"), Skip()))
    call_edges = list(cfg.call_edges())
    assert len(call_edges) == 1
    assert call_edges[0].label.proc == "q"


def test_cfg_points_unique_per_proc():
    cfg = CFG("p", seq(Skip(), Skip()))
    assert len(set(cfg.points)) == len(cfg.points)
    assert all(pt.proc == "p" for pt in cfg.points)


def test_control_flow_graphs_cache():
    program = figure1_program()
    cfgs = ControlFlowGraphs(program)
    assert cfgs["main"] is cfgs["main"]
    assert cfgs.entry("foo").proc == "foo"
    assert cfgs.exit("foo").proc == "foo"
    assert cfgs.total_points() == sum(len(cfgs[p]) for p in program)


def test_every_nonexit_point_has_successor():
    program = figure1_program()
    cfgs = ControlFlowGraphs(program)
    for proc in program:
        cfg = cfgs[proc]
        for point in cfg.points:
            if point != cfg.exit:
                assert cfg.successors(point), f"dead point {point}"
