"""Engine-level tests for the lattice (value-mode) fixpoint core.

Three contracts from DESIGN §14:

* **Finite domains are untouched** — the widening knobs normalize away
  and every engine × scheduler × kernel cell computes byte-identical
  reports and work counters whatever values the knobs carry;
* **Infinite-height domains terminate** — the interval×typestate
  product reaches a fixpoint on loop-heavy programs where the naive
  powerset iteration provably diverges (the guard test below exhibits
  the strictly ascending chain);
* **Unsupported combinations fail typed** — compiled kernels refuse
  infinite domains with :class:`UnsupportedDomainError` naming the
  object fallback, at config-validation time, not mid-run.
"""

import pytest

from repro.bench.workloads import loop_nest
from repro.framework.config import AnalysisConfig
from repro.framework.interfaces import UnsupportedDomainError
from repro.framework.metrics import Budget
from repro.framework.session import analysis_session
from repro.ir.builder import ProgramBuilder
from repro.numeric.interval import Interval
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY

from tests.helpers import loop_program, recursive_program


# -- finite domains: widening knobs are inert -----------------------------------

ENGINES = ["td", "bu", "swift", "concurrent"]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheduler", ["lifo", "scc-topo"])
@pytest.mark.parametrize("kernel", ["object", "bitset"])
@pytest.mark.parametrize("make_program", [loop_program, recursive_program])
def test_widening_knobs_are_identity_on_finite_domains(
    engine, scheduler, kernel, make_program
):
    program = make_program()
    reports = [
        run_typestate(
            program,
            FILE_PROPERTY,
            engine=engine,
            domain="simple",
            k=2,
            theta=1,
            scheduler=scheduler,
            kernel=kernel,
            widening_delay=delay,
            descending_iters=iters,
        )
        for delay, iters in [(2, 0), (0, 3)]
    ]
    base, knobbed = reports
    assert base.errors == knobbed.errors
    assert base.td_summaries == knobbed.td_summaries
    assert base.bu_summaries == knobbed.bu_summaries
    assert (
        base.result.metrics.total_work == knobbed.result.metrics.total_work
    )


def test_finite_domain_fingerprint_ignores_knobs():
    base = AnalysisConfig(domain="simple")
    knobbed = base.replace(widening_delay=7, descending_iters=4)
    assert base.canonical_dict() == knobbed.canonical_dict()
    flags = base.canonical_dict()["flags"]
    assert flags["widening_delay"] is None
    assert flags["descending_iters"] is None


def test_infinite_domain_fingerprint_keys_on_knobs():
    base = AnalysisConfig(domain="interval-typestate")
    knobbed = base.replace(widening_delay=7)
    assert base.canonical_dict() != knobbed.canonical_dict()
    assert base.canonical_dict()["flags"]["widening_delay"] == 2


# -- the divergence guard and the termination regression ------------------------


def test_naive_interval_iteration_diverges_at_a_loop_head():
    # The chain a widening-free fixpoint would walk at loop_nest's loop
    # heads: join the counter's post-body value into the head, forever.
    # Every iterate is strictly above the last — an infinite strictly
    # ascending chain, so naive powerset/value iteration cannot stop.
    from repro.ir.commands import Invoke
    from repro.numeric.interval import EMPTY_ENV, ZERO, IntervalEnv
    from repro.numeric.td_analysis import IntervalTD

    td = IntervalTD()
    head = IntervalEnv([("cnt", ZERO)])
    seen = {head}
    for _ in range(64):
        (after_body,) = td.transfer(Invoke("cnt", "incr"), head)
        new_head = td.join(head, after_body)
        assert td.leq(head, new_head) and new_head != head  # strictly up
        head = new_head
        assert head not in seen
        seen.add(head)
    assert len(seen) == 65


@pytest.mark.parametrize("engine", ENGINES)
def test_product_terminates_on_loop_nest(engine):
    # The acceptance regression: with widening, every engine reaches a
    # fixpoint (within a finite work budget) on the loop-heavy shape
    # whose naive iteration the guard test above proves divergent.
    report = run_typestate(
        loop_nest(4, seed=19),
        FILE_PROPERTY,
        engine=engine,
        domain="interval-typestate",
        k=2,
        theta=1,
        budget=Budget(max_work=500_000),
    )
    assert not report.timed_out
    assert report.result.metrics.total_work > 0
    assert report.error_sites  # the protocol violations are still found


def test_engines_agree_on_product_error_sites():
    program = loop_nest(4, seed=19)
    sites = {
        engine: run_typestate(
            program,
            FILE_PROPERTY,
            engine=engine,
            domain="interval-typestate",
            k=2,
            theta=1,
        ).error_sites
        for engine in ENGINES
    }
    assert sites["td"] == sites["swift"] == sites["concurrent"] == sites["bu"]


def test_descending_iters_recover_precision_after_widening():
    # loop { c.incr(); c.le10() }: the ascending pass widens the head
    # to [0,+inf]; one descending (narrowing) pass re-runs the guard
    # and pulls the exit back down to [0,10] — soundly, since narrowing
    # only refines infinite bounds.
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("c", "h")
        with p.loop() as body:
            body.invoke("c", "incr")
            body.invoke("c", "le10")
    program = b.build()

    def exit_env(iters):
        config = AnalysisConfig(
            engine="td", domain="interval", descending_iters=iters
        )
        outcome = analysis_session().run(program, config)
        assert not outcome.timed_out
        (env,) = outcome.findings
        return env

    assert exit_env(0).get("c") == Interval(0, None)
    assert exit_env(1).get("c") == Interval(0, 10)


def test_widening_delay_zero_still_terminates_and_is_sound():
    program = loop_nest(4, seed=19)
    eager = run_typestate(
        program,
        FILE_PROPERTY,
        engine="swift",
        domain="interval-typestate",
        widening_delay=0,
    )
    default = run_typestate(
        program, FILE_PROPERTY, engine="swift", domain="interval-typestate"
    )
    assert not eager.timed_out
    assert eager.error_sites == default.error_sites


# -- typed refusal of unsupported combinations ----------------------------------


def test_config_rejects_compiled_kernel_for_infinite_domain():
    with pytest.raises(UnsupportedDomainError) as exc:
        AnalysisConfig(domain="interval-typestate", kernel="bitset")
    message = str(exc.value)
    assert "'object' kernel fallback" in message
    assert "typestate-simple" in message and "typestate-full" in message
    assert isinstance(exc.value, ValueError)  # old except clauses still catch


def test_config_rejects_numpy_kernel_for_interval_domain():
    with pytest.raises(UnsupportedDomainError):
        AnalysisConfig(domain="interval", kernel="numpy")


def test_engine_constructor_rejects_compiled_kernel_in_value_mode():
    from repro.framework.topdown import TopDownEngine
    from repro.numeric.product import product_analyses

    td_analysis, _, bootstrap = product_analyses(FILE_PROPERTY)
    with pytest.raises(UnsupportedDomainError):
        TopDownEngine(
            loop_nest(2, seed=19), td_analysis, [bootstrap], kernel="bitset"
        )


def test_seed_enumerator_refuses_product_analysis():
    from repro.numeric.product import IntervalTypestateTD
    from repro.typestate.enumerate import seed_states

    program = loop_nest(2, seed=19)
    with pytest.raises(UnsupportedDomainError) as exc:
        seed_states(program, FILE_PROPERTY, IntervalTypestateTD(FILE_PROPERTY))
    assert "typestate-simple" in str(exc.value)


def test_nonnegative_knob_validation():
    with pytest.raises(ValueError):
        AnalysisConfig(widening_delay=-1)
    with pytest.raises(ValueError):
        AnalysisConfig(descending_iters=-1)


# -- the incremental store round trip -------------------------------------------


def test_store_roundtrip_warm_zero_work_and_knob_rekeys(tmp_path):
    from repro.incremental import SummaryStore, analyze_with_store
    from repro.incremental.driver import clear_warm_cache

    clear_warm_cache()
    program = loop_nest(4, seed=19)
    store = SummaryStore(tmp_path / "store")
    cold = analyze_with_store(
        program, FILE_PROPERTY, store, domain="interval-typestate"
    )
    assert cold.cold and not cold.report.timed_out
    assert cold.report.result.metrics.total_work > 0
    warm = analyze_with_store(
        program, FILE_PROPERTY, store, domain="interval-typestate"
    )
    assert not warm.cold
    assert warm.report.result.metrics.total_work == 0
    assert warm.report.errors == cold.report.errors
    # A knob change is a different config identity: cold, never wrong.
    rekeyed = analyze_with_store(
        program,
        FILE_PROPERTY,
        store,
        domain="interval-typestate",
        widening_delay=4,
    )
    assert rekeyed.cold
    assert rekeyed.config_fp != cold.config_fp
    assert rekeyed.report.error_sites == cold.report.error_sites
