"""Tests for the structured tracing layer (framework/tracing.py).

Covers the ISSUE acceptance points: serial traces are byte-identical
across runs, the NullSink default adds no work (events are never even
constructed), engine work counters are unchanged by tracing, and the
Profile/TraceExplainer consumers reconstruct what the engines did.
"""

import json
from collections import Counter

import pytest

from repro.framework.bottomup import BottomUpEngine
from repro.framework.metrics import Budget
from repro.framework.pruning import NoPruner
from repro.framework.swift import SwiftEngine
from repro.framework.tracing import (
    EVENT_KINDS,
    NULL_SINK,
    JsonlSink,
    NullSink,
    Profile,
    RingSink,
    TraceEvent,
    diff_traces,
    read_jsonl,
)
from repro.framework.topdown import TopDownEngine
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import figure1_program, loop_program


def _swift(program, sink=None, k=1, theta=1, budget=None):
    return SwiftEngine(
        program,
        SimpleTypestateTD(FILE_PROPERTY),
        SimpleTypestateBU(FILE_PROPERTY),
        k=k,
        theta=theta,
        budget=budget,
        sink=sink,
    )


def _initial():
    return [bootstrap_state(FILE_PROPERTY)]


# -- sinks ---------------------------------------------------------------------------
def test_null_sink_disabled():
    assert NULL_SINK.enabled is False
    NULL_SINK.emit(TraceEvent("propagate", "p", {}))  # no-op, no error
    NULL_SINK.close()


def test_ring_sink_bounded_and_counts_drops():
    sink = RingSink(capacity=3)
    for i in range(5):
        sink.emit(TraceEvent("propagate", f"p{i}", {}))
    assert sink.emitted == 5
    assert sink.dropped == 2
    assert [e.proc for e in sink.events] == ["p2", "p3", "p4"]


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlSink(path) as sink:
        sink.emit(TraceEvent("bu_trigger", "f", {"targets": ["f", "g"]}))
        sink.emit(TraceEvent("prune_drop", "g", {"kept": [], "dropped": ["r"]}))
    events = read_jsonl(path)
    assert [e.kind for e in events] == ["bu_trigger", "prune_drop"]
    assert events[0].proc == "f"
    assert events[0].data["targets"] == ["f", "g"]
    # seq is stripped back out of the payload on read.
    assert "seq" not in events[0].data


def test_trace_event_json_is_canonical():
    event = TraceEvent("propagate", "main", {"b": 1, "a": 2})
    text = event.to_json()
    assert text == json.dumps(json.loads(text), sort_keys=True, separators=(",", ":"))
    assert TraceEvent.from_json(text).data == {"b": 1, "a": 2}


def test_trace_event_rejects_unknown_kind():
    with pytest.raises(ValueError):
        TraceEvent("not_a_kind", "p", {})


# -- determinism (acceptance) --------------------------------------------------------
def test_serial_trace_byte_identical(tmp_path):
    """Two serial runs in one process must produce identical JSONL."""
    paths = []
    for name in ("a.jsonl", "b.jsonl"):
        path = tmp_path / name
        with JsonlSink(path) as sink:
            _swift(figure1_program(), sink=sink).run(_initial())
        paths.append(path)
    first, second = (p.read_bytes() for p in paths)
    assert first == second
    assert first  # non-empty: the run did emit events


def test_trace_events_carry_no_wall_clock(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlSink(path) as sink:
        _swift(figure1_program(), sink=sink).run(_initial())
    for event in read_jsonl(path):
        assert event.kind in EVENT_KINDS
        for key in event.data:
            assert "time" not in key and "seconds" not in key


# -- zero-overhead default (acceptance) ----------------------------------------------
class _ExplodingNullSink(NullSink):
    """A disabled sink whose emit must never be reached."""

    def emit(self, event):
        raise AssertionError("engine constructed an event with tracing off")


def test_null_sink_fast_path_never_constructs_events():
    program = figure1_program()
    result = _swift(program, sink=_ExplodingNullSink()).run(_initial())
    assert result.profile is None
    default = _swift(program).run(_initial())
    assert result.exit_states() == default.exit_states()


def test_work_counters_identical_with_tracing_on_and_off():
    """Engine work counters must be unchanged by tracing (acceptance)."""
    program = loop_program()
    plain = _swift(program).run(_initial())
    sink = RingSink()
    traced = _swift(program, sink=sink).run(_initial())
    assert traced.metrics.total_work == plain.metrics.total_work
    assert traced.metrics.transfers == plain.metrics.transfers
    assert traced.metrics.propagations == plain.metrics.propagations
    assert traced.metrics.summary_instantiations == plain.metrics.summary_instantiations
    assert traced.exit_states() == plain.exit_states()
    assert sink.emitted > 0
    assert traced.profile is not None


# -- event coverage ------------------------------------------------------------------
def test_swift_trace_covers_lifecycle_events():
    sink = RingSink()
    _swift(figure1_program(), sink=sink).run(_initial())
    kinds = Counter(e.kind for e in sink.events)
    assert kinds["propagate"] > 0
    assert kinds["bu_trigger"] >= 1
    assert kinds["bu_installed"] >= 1
    assert kinds["prune_drop"] >= 1
    assert kinds["summary_instantiated"] >= 1
    assert kinds["td_summary_reuse"] >= 1


def test_td_summary_reuse_only_event_kind_at_high_k():
    """With k high enough SWIFT degenerates to TD: no bu events."""
    sink = RingSink()
    _swift(loop_program(), sink=sink, k=100).run(_initial())
    kinds = set(e.kind for e in sink.events)
    assert kinds == {"propagate", "td_summary_reuse"}


def test_bu_postponed_event():
    """A trigger whose subgraph has unseen procedures emits bu_postponed."""
    sink = RingSink()
    engine = _swift(figure1_program(), sink=sink)
    engine._entry_counts["foo"] = Counter({bootstrap_state(FILE_PROPERTY): 2})
    # "foo" is reachable from "main", but "main" itself has no recorded
    # incoming state yet — triggering on main must postpone.
    engine._run_bu("main")
    events = [e for e in sink.events if e.kind == "bu_postponed"]
    assert len(events) == 1
    assert events[0].proc == "main"
    assert "main" in events[0].data["unseen"]


def test_budget_exceeded_event_td():
    sink = RingSink()
    result = _swift(
        figure1_program(), sink=sink, budget=Budget(max_work=3)
    ).run(_initial())
    assert result.timed_out
    events = [e for e in sink.events if e.kind == "budget_exceeded"]
    assert len(events) == 1
    assert events[0].data["engine"] == "td"
    assert events[0].data["spent"] > events[0].data["limit"]


def test_budget_exceeded_event_bu():
    sink = RingSink()
    analysis = SimpleTypestateBU(FILE_PROPERTY)
    engine = BottomUpEngine(
        figure1_program(),
        analysis,
        pruner=NoPruner(analysis),
        budget=Budget(max_work=1),
        sink=sink,
    )
    result = engine.analyze()
    assert result.timed_out
    events = [e for e in sink.events if e.kind == "budget_exceeded"]
    assert len(events) == 1
    assert events[0].data["engine"] == "bu"


def test_topdown_engine_traces_propagations():
    sink = RingSink()
    engine = TopDownEngine(
        figure1_program(), SimpleTypestateTD(FILE_PROPERTY), sink=sink
    )
    result = engine.run(_initial())
    propagates = [e for e in sink.events if e.kind == "propagate"]
    assert len(propagates) == result.metrics.propagations
    seeds = [e for e in propagates if e.data["via"] == "seed"]
    assert len(seeds) == 1 and seeds[0].proc == "main"


# -- Profile -------------------------------------------------------------------------
def test_profile_aggregates_per_procedure():
    sink = RingSink()
    result = _swift(figure1_program(), sink=sink).run(_initial())
    profile = Profile.from_events(sink.events)
    assert profile.total_events == len(sink.events)
    foo = profile.per_proc["foo"]
    assert foo.propagations > 0
    assert foo.summary_instantiations >= 1
    # The engine-attached profile saw the same events plus wall time.
    attached = result.profile
    assert attached.event_counts == profile.event_counts
    assert attached.per_proc["foo"].propagations == foo.propagations
    assert sum(p.td_seconds for p in attached.per_proc.values()) > 0


def test_profile_summary_hit_rate():
    profile = Profile()
    stats = profile.proc("f")
    stats.td_summary_reuses = 3
    stats.summary_instantiations = 1
    stats.fresh_contexts = 4
    assert stats.summary_hits == 4
    assert stats.summary_hit_rate == 0.5
    assert profile.proc("never").summary_hit_rate is None


def test_profile_from_jsonl_and_render(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlSink(path) as sink:
        _swift(figure1_program(), sink=sink).run(_initial())
    profile = Profile.from_jsonl(path)
    text = profile.render(limit=10, title="T")
    assert text.startswith("T")
    assert "foo" in text and "main" in text
    assert profile.hottest(1) == ["main"]  # most propagations in figure 1


def test_profile_is_a_sink():
    profile = Profile()
    assert profile.enabled
    profile.emit(TraceEvent("bu_trigger", "f", {"targets": ["f"]}))
    profile.close()
    assert profile.per_proc["f"].bu_triggers == 1


# -- diff ----------------------------------------------------------------------------
def test_diff_traces():
    left = [
        TraceEvent("propagate", "f", {"via": "seed"}),
        TraceEvent("propagate", "f", {"via": "prim"}),
        TraceEvent("bu_trigger", "f", {}),
    ]
    right = [
        TraceEvent("propagate", "f", {"via": "seed"}),
        TraceEvent("bu_trigger", "f", {}),
        TraceEvent("bu_trigger", "g", {}),
    ]
    delta = diff_traces(left, right)
    assert ("propagate", "f", 2, 1) in delta
    assert ("bu_trigger", "g", 0, 1) in delta
    assert all(entry[0] != "bu_trigger" or entry[1] != "f" for entry in delta)
    assert diff_traces(left, list(left)) == []


# -- provenance (TraceExplainer) -----------------------------------------------------
def test_trace_explainer_provenance_reaches_seed():
    from repro.framework.explain import TraceExplainer

    sink = RingSink()
    result = _swift(figure1_program(), sink=sink).run(_initial())
    explainer = TraceExplainer(sink.events)
    assert len(explainer) > 0
    # Every discovered edge must have a provenance chain ending at a
    # propagate event and starting at the seed.
    exit_point = result.cfgs.exit("foo")
    some_state = next(iter(result.states_at(exit_point)))
    chain = explainer.provenance(exit_point, some_state)
    assert chain, "no provenance for a state the engine computed"
    assert chain[0].data["via"] == "seed"
    assert chain[-1].data["point"] == str(exit_point)
    # Adjacent links agree: each event's src triple is the previous edge.
    for prev, cur in zip(chain, chain[1:]):
        assert cur.data["src"] == prev.data["point"]
        assert cur.data["src_state"] == prev.data["state"]
    rendered = explainer.render_provenance(exit_point, some_state)
    assert "seeded" in rendered


def test_trace_explainer_unknown_state():
    from repro.framework.explain import TraceExplainer

    explainer = TraceExplainer([])
    assert explainer.discovery("main:0", "nope") is None
    assert explainer.provenance("main:0", "nope") == []
    assert "no propagate event" in explainer.render_provenance("main:0", "nope")


def test_explain_with_trace():
    from repro.framework.explain import SummaryExplorer, TraceExplainer

    sink = RingSink()
    result = _swift(figure1_program(), sink=sink).run(_initial())
    explorer = SummaryExplorer(result)
    explainer = TraceExplainer(sink.events)
    point = result.cfgs["foo"].points[0]
    state = next(iter(result.states_at(point)))
    text = explorer.explain_with_trace(explainer, point, state)
    assert "procedure foo" in text
    assert "provenance (from trace)" in text
