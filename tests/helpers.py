"""Shared test fixtures: small programs and universes.

The running example of the paper (Figure 1) is reproduced here with the
parameter of ``foo`` modelled as the global register ``f`` (the formal
language of Section 3.5 has parameterless procedures; frontends lower
parameter passing to argument registers the same way).
"""

from __future__ import annotations

import itertools
from typing import List

from repro.ir.builder import ProgramBuilder
from repro.ir.commands import Assign, FieldLoad, FieldStore, Invoke, New, Skip
from repro.ir.program import Program
from repro.typestate.dfa import TypestateProperty
from repro.typestate.states import BOOTSTRAP_SITE, AbstractState


def figure1_program() -> Program:
    """The paper's running example (Section 2)."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v1", "h1").assign("f", "v1").call("foo")
        p.new("v2", "h2").assign("f", "v2").call("foo")
        p.new("v3", "h3").assign("f", "v3").call("foo")
    with b.proc("foo") as p:
        p.invoke("f", "open").invoke("f", "close")
    return b.build()


def section24_program() -> Program:
    """The two-parameter ``foo`` of Section 2.4 (the pruning challenge)."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("a", "h")
        p.assign("f", "a").assign("g", "a")
        p.call("foo")
        p.new("b", "h2")
        p.assign("g", "b")
        p.call("foo")
    with b.proc("foo") as p:
        with p.choose() as c:
            with c.branch() as t:
                t.invoke("f", "open").invoke("f", "close")
            with c.branch() as e:
                e.invoke("g", "open")
    return b.build()


def loop_program() -> Program:
    """Allocation and use inside a loop (exercises Star fixpoints)."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        with p.loop() as body:
            body.new("v", "h1").assign("f", "v").call("use")
        p.new("w", "h2").assign("f", "w").call("use")
    with b.proc("use") as p:
        p.invoke("f", "open").invoke("f", "close")
    return b.build()


def recursive_program() -> Program:
    """Direct recursion guarded by non-deterministic choice."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v", "h1").assign("f", "v").call("rec")
    with b.proc("rec") as p:
        with p.choose() as c:
            with c.branch() as stop:
                stop.invoke("f", "open")
            with c.branch() as go:
                go.call("rec")
    return b.build()


def diamond_program() -> Program:
    """Two callers sharing one helper with different aliasing patterns."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.call("left").call("right")
    with b.proc("left") as p:
        p.new("x", "hL").assign("f", "x").call("helper")
    with b.proc("right") as p:
        p.new("y", "hR").assign("g", "y").call("helper")
    with b.proc("helper") as p:
        p.invoke("f", "open").invoke("f", "close")
    return b.build()


def all_small_programs() -> List[Program]:
    return [
        figure1_program(),
        section24_program(),
        loop_program(),
        recursive_program(),
        diamond_program(),
    ]


def small_state_universe(
    prop: TypestateProperty, sites: List[str], variables: List[str], max_must: int = 2
) -> List[AbstractState]:
    """Every abstract state over small site/variable/typestate universes."""
    states = []
    var_subsets = []
    for size in range(0, max_must + 1):
        var_subsets.extend(itertools.combinations(sorted(variables), size))
    for site in sites + [BOOTSTRAP_SITE]:
        for ts in prop.states:
            for subset in var_subsets:
                states.append(AbstractState(site, ts, frozenset(subset)))
    return states


def all_prims(variables: List[str], sites: List[str], methods: List[str]) -> List:
    """A representative set of primitive commands over small universes."""
    prims = [Skip()]
    for v in variables:
        for h in sites:
            prims.append(New(v, h))
        for w in variables:
            prims.append(Assign(v, w))
            prims.append(FieldLoad(v, w, "fld"))
            prims.append(FieldStore(v, "fld", w))
        for m in methods:
            prims.append(Invoke(v, m))
    return prims
