"""Tests for the SWIFT diagnostics (repro.framework.explain)."""

from repro.framework.explain import SummaryExplorer
from repro.framework.swift import SwiftEngine
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

from tests.helpers import figure1_program


def _explorer(k=2, theta=2):
    program = figure1_program()
    result = SwiftEngine(
        program,
        SimpleTypestateTD(FILE_PROPERTY),
        SimpleTypestateBU(FILE_PROPERTY),
        k=k,
        theta=theta,
    ).run([bootstrap_state(FILE_PROPERTY)])
    return SummaryExplorer(result)


def test_hottest_procedures_ranks_foo_first():
    explorer = _explorer()
    hottest = explorer.hottest_procedures()
    assert hottest[0][0] == "foo"
    assert hottest[0][1] >= 3


def test_summarized_procedures():
    explorer = _explorer()
    assert explorer.summarized_procedures() == ["foo"]


def test_coverage_between_zero_and_one():
    explorer = _explorer()
    cov = explorer.coverage("foo")
    assert cov is not None and 0.0 <= cov <= 1.0
    assert explorer.coverage("main") is None  # never summarized


def test_explain_mentions_cases_and_contexts():
    explorer = _explorer()
    text = explorer.explain("foo")
    assert "incoming abstract states" in text
    assert "bottom-up summary" in text
    assert "case:" in text


def test_explain_unsummarized_procedure():
    explorer = _explorer(k=100)
    text = explorer.explain("foo")
    assert "no bottom-up summary" in text


def test_fallback_states_respect_ignored_set():
    explorer = _explorer(k=2, theta=1)
    summary = explorer.result.bu["foo"]
    for sigma in explorer.fallback_states("foo"):
        assert sigma in summary.ignored


def test_report_overview():
    explorer = _explorer()
    report = explorer.report(limit=3)
    assert "SWIFT summary report" in report
    assert "foo" in report
