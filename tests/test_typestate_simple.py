"""Unit tests for the simple type-state analyses (Figures 2 and 3).

Includes a direct reproduction of the bottom-up summaries ``B1``/``B2``
of ``foo`` from the paper's overview (Section 2, adapted to the
Figure 2 domain without must-not sets).
"""

import pytest

from repro.framework.predicates import FALSE, TRUE, Conjunction
from repro.ir.commands import Assign, FieldLoad, FieldStore, Invoke, New, Skip
from repro.typestate.bu_analysis import (
    ConstRelation,
    HaveAtom,
    NotHaveAtom,
    SimpleTypestateBU,
    TransformerRelation,
)
from repro.typestate.dfa import ERROR
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState, bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD


@pytest.fixture
def td():
    return SimpleTypestateTD(FILE_PROPERTY)


@pytest.fixture
def bu():
    return SimpleTypestateBU(FILE_PROPERTY)


def _state(site="h1", ts="closed", *must):
    return AbstractState(site, ts, frozenset(must))


# -- top-down transfer functions (Figure 2) -------------------------------------------
def test_td_new_spawns_object(td):
    out = td.transfer(New("v", "h2"), _state("h1", "closed", "v", "w"))
    assert out == frozenset(
        {
            AbstractState("h1", "closed", frozenset({"w"})),
            AbstractState("h2", "closed", frozenset({"v"})),
        }
    )


def test_td_assign_copies_alias(td):
    out = td.transfer(Assign("v", "w"), _state("h1", "closed", "w"))
    assert out == frozenset({AbstractState("h1", "closed", frozenset({"v", "w"}))})


def test_td_assign_kills_alias(td):
    out = td.transfer(Assign("v", "w"), _state("h1", "closed", "v"))
    assert out == frozenset({AbstractState("h1", "closed", frozenset())})


def test_td_invoke_strong_update(td):
    out = td.transfer(Invoke("v", "open"), _state("h1", "closed", "v"))
    assert out == frozenset({AbstractState("h1", "opened", frozenset({"v"}))})


def test_td_invoke_double_open_errors(td):
    out = td.transfer(Invoke("v", "open"), _state("h1", "opened", "v"))
    assert out == frozenset({AbstractState("h1", ERROR, frozenset({"v"}))})


def test_td_invoke_without_must_alias_errors(td):
    out = td.transfer(Invoke("v", "open"), _state("h1", "closed", "w"))
    assert out == frozenset({AbstractState("h1", ERROR, frozenset({"w"}))})


def test_td_untracked_method_is_noop(td):
    sigma = _state("h1", "closed", "w")
    assert td.transfer(Invoke("v", "toString"), sigma) == frozenset({sigma})


def test_td_field_load_havocs_lhs(td):
    out = td.transfer(FieldLoad("v", "w", "f"), _state("h1", "closed", "v", "w"))
    assert out == frozenset({AbstractState("h1", "closed", frozenset({"w"}))})


def test_td_store_and_skip_are_noops(td):
    sigma = _state("h1", "opened", "v")
    assert td.transfer(FieldStore("v", "f", "w"), sigma) == frozenset({sigma})
    assert td.transfer(Skip(), sigma) == frozenset({sigma})


def test_td_tracked_sites_filter():
    td = SimpleTypestateTD(FILE_PROPERTY, tracked_sites=frozenset({"h1"}))
    out = td.transfer(New("v", "h9"), bootstrap_state(FILE_PROPERTY))
    assert out == frozenset({bootstrap_state(FILE_PROPERTY)})


# -- bottom-up transfer functions (Figure 3) -------------------------------------------
def test_identity_relation_maps_state_to_itself(bu):
    sigma = _state("h1", "opened", "v")
    assert bu.apply(bu.identity(), sigma) == frozenset({sigma})


def test_paper_summaries_b1_b2():
    """foo(){ f.open(); f.close(); } yields exactly the cases B1, B2.

    In the Figure 2 domain without must-not sets, ``notHave(f)``
    corresponds to the weak-update case and yields the error constant.
    """
    bu = SimpleTypestateBU(FILE_PROPERTY)
    relations = {bu.identity()}
    for cmd in [Invoke("f", "open"), Invoke("f", "close")]:
        new = set()
        for r in relations:
            new.update(bu.rtransfer(cmd, r))
        relations = new
    assert len(relations) == 2
    by_pred = {str(r.pred): r for r in relations}
    strong = by_pred["have(f)"]
    weak = by_pred["notHave(f)"]
    # B2: iota_close ∘ iota_open — closed stays closed, opened errors.
    assert strong.iota("closed") == "closed"
    assert strong.iota("opened") == ERROR
    # Weak case: the simplified analysis drives the object to error.
    assert weak.iota("closed") == ERROR


def test_rtransfer_new_creates_const_relation(bu):
    out = bu.rtransfer(New("v", "h3"), bu.identity())
    consts = [r for r in out if isinstance(r, ConstRelation)]
    transformers = [r for r in out if isinstance(r, TransformerRelation)]
    assert len(consts) == 1 and len(transformers) == 1
    assert consts[0].output == AbstractState("h3", "closed", frozenset({"v"}))
    assert not transformers[0].keeps("v")


def test_rtransfer_assign_three_cases(bu):
    ident = bu.identity()
    # w passes through the identity: expect a case split.
    out = bu.rtransfer(Assign("v", "w"), ident)
    assert len(out) == 2
    preds = {str(r.pred) for r in out}
    assert preds == {"have(w)", "notHave(w)"}


def test_rtransfer_assign_no_split_when_added(bu):
    r = TransformerRelation(
        FILE_PROPERTY.identity_function(), frozenset(), frozenset({"w"}), TRUE
    )
    out = bu.rtransfer(Assign("v", "w"), r)
    assert len(out) == 1
    (only,) = out
    assert only.adds("v") and only.adds("w")


def test_rtransfer_assign_no_split_when_removed(bu):
    r = TransformerRelation(
        FILE_PROPERTY.identity_function(), frozenset({"w"}), frozenset(), TRUE
    )
    out = bu.rtransfer(Assign("v", "w"), r)
    assert len(out) == 1
    (only,) = out
    assert not only.keeps("v")


def test_rtransfer_const_uses_td_transfer(bu):
    const = ConstRelation(_state("h1", "closed", "v"), TRUE)
    out = bu.rtransfer(Invoke("v", "open"), const)
    assert out == frozenset({ConstRelation(_state("h1", "opened", "v"), TRUE)})


def test_apply_respects_predicate(bu):
    r = TransformerRelation(
        FILE_PROPERTY.identity_function(),
        frozenset(),
        frozenset(),
        Conjunction.of([HaveAtom("f")]),
    )
    assert bu.apply(r, _state("h1", "closed", "f"))
    assert not bu.apply(r, _state("h1", "closed", "g"))


def test_transformer_canonical_form():
    r = TransformerRelation(
        FILE_PROPERTY.identity_function(), frozenset({"v", "w"}), frozenset({"v"}), TRUE
    )
    # `added` wins; the overlap is dropped from `removed`.
    assert r.removed == frozenset({"w"})
    assert r.added == frozenset({"v"})


def test_rcompose_constant_absorbs(bu):
    const = ConstRelation(_state("h1", "closed", "v"), TRUE)
    out = bu.rcompose(bu.identity(), const)
    assert out == frozenset({const})


def test_rcompose_contradiction_is_empty(bu):
    r1 = TransformerRelation(
        FILE_PROPERTY.identity_function(),
        frozenset({"f"}),  # f removed: output never has f
        frozenset(),
        TRUE,
    )
    r2 = TransformerRelation(
        FILE_PROPERTY.identity_function(),
        frozenset(),
        frozenset(),
        Conjunction.of([HaveAtom("f")]),  # requires f on input
    )
    assert bu.rcompose(r1, r2) == frozenset()


def test_rcompose_wp_through_added(bu):
    r1 = TransformerRelation(
        FILE_PROPERTY.identity_function(), frozenset(), frozenset({"f"}), TRUE
    )
    r2 = TransformerRelation(
        FILE_PROPERTY.identity_function(),
        frozenset(),
        frozenset(),
        Conjunction.of([HaveAtom("f")]),
    )
    out = bu.rcompose(r1, r2)
    assert len(out) == 1
    (only,) = out
    assert only.pred == TRUE  # wp(have(f)) through +f is true
    assert only.adds("f")


def test_pre_image_matches_apply(bu):
    r = TransformerRelation(
        FILE_PROPERTY.identity_function(), frozenset({"g"}), frozenset({"f"}), TRUE
    )
    p = Conjunction.of([HaveAtom("f"), NotHaveAtom("g")])
    pre = bu.pre_image(r, p)
    # f is added and g removed, so the pre-image is everything.
    assert pre == frozenset({TRUE})
    p2 = Conjunction.of([HaveAtom("g")])
    assert bu.pre_image(r, p2) == frozenset()
