"""Unit tests for access paths, path patterns, and full relations."""

import pytest

from repro.framework.predicates import TRUE, Conjunction
from repro.typestate.full import (
    ExactPath,
    FullAbstractState,
    FullTransformerRelation,
    HasField,
    InMust,
    Rooted,
    matches_any,
    path_fields,
    path_root,
)
from repro.typestate.full.paths import (
    filter_removed,
    is_valid_path,
    normalize_patterns,
)
from repro.typestate.properties import FILE_PROPERTY


def test_path_root_and_fields():
    assert path_root("v") == "v"
    assert path_root("v.f.g") == "v"
    assert path_fields("v") == ()
    assert path_fields("v.f.g") == ("f", "g")


def test_path_validity():
    assert is_valid_path("v")
    assert is_valid_path("v.f.g")
    assert not is_valid_path("v.f.g.h")  # more than two fields
    assert not is_valid_path("v..f")


def test_pattern_matching():
    assert ExactPath("v.f").matches("v.f")
    assert not ExactPath("v.f").matches("v")
    assert Rooted("v").matches("v")
    assert Rooted("v").matches("v.f.g")
    assert not Rooted("v").matches("vv.f")
    assert HasField("f").matches("x.f")
    assert HasField("f").matches("x.g.f")
    assert not HasField("f").matches("f")  # 'f' here is a variable


def test_matches_any_and_filter():
    patterns = [Rooted("v"), HasField("log")]
    assert matches_any(patterns, "v.x")
    assert matches_any(patterns, "w.log")
    assert not matches_any(patterns, "w.data")
    paths = frozenset({"v", "w.log", "w.data", "u"})
    assert filter_removed(paths, frozenset(patterns)) == frozenset({"w.data", "u"})


def test_normalize_drops_covered_exact_patterns():
    patterns = normalize_patterns([ExactPath("v.f"), Rooted("v"), ExactPath("w")])
    assert Rooted("v") in patterns
    assert ExactPath("v.f") not in patterns
    assert ExactPath("w") in patterns


def _rel(**kwargs):
    empty = frozenset()
    defaults = dict(
        iota=FILE_PROPERTY.identity_function(),
        rem_must=empty,
        add_must=empty,
        rem_mustnot=empty,
        add_mustnot=empty,
        pred=TRUE,
    )
    defaults.update(kwargs)
    return FullTransformerRelation(**defaults)


def test_relation_status_queries():
    r = _rel(
        rem_must=frozenset({Rooted("v")}),
        add_must=frozenset({"w"}),
        add_mustnot=frozenset({"u"}),
    )
    assert r.must_status("w") == "in"
    assert r.must_status("v.f") == "out"
    assert r.must_status("x") == "dep"
    assert r.mustnot_status("u") == "in"
    assert r.mustnot_status("x") == "dep"


def test_relation_transform():
    r = _rel(
        rem_must=frozenset({Rooted("v")}),
        add_must=frozenset({"w"}),
        rem_mustnot=frozenset({HasField("f")}),
        add_mustnot=frozenset({"v"}),
    )
    sigma = FullAbstractState(
        "h", "closed", frozenset({"v", "v.f", "x"}), frozenset({"y.f", "z"})
    )
    out = r.transform(sigma)
    assert out.must == frozenset({"x", "w"})
    assert out.mustnot == frozenset({"z", "v"})
    assert out.site == "h" and out.state == "closed"


def test_relation_rejects_add_overlap():
    with pytest.raises(ValueError):
        _rel(add_must=frozenset({"v"}), add_mustnot=frozenset({"v"}))


def test_relation_equality_and_hash():
    a = _rel(add_must=frozenset({"w"}))
    b = _rel(add_must=frozenset({"w"}))
    assert a == b and hash(a) == hash(b)
    c = _rel(add_must=frozenset({"x"}))
    assert a != c
    assert len({a, b, c}) == 2


def test_relation_str_mentions_components():
    r = _rel(
        add_must=frozenset({"w"}),
        pred=Conjunction.of([InMust("w")]),
    )
    text = str(r)
    assert "inMust(w)" in text and "w" in text
