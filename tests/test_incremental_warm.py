"""Warm-start equivalence, invalidation, and the incremental driver."""

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro.framework.metrics import Budget
from repro.framework.tracing import RingSink
from repro.incremental import SummaryStore, analyze_with_store, diff_fingerprints
from repro.incremental.fingerprint import ProgramFingerprints
from repro.incremental.invalidate import (
    REASON_BODY,
    REASON_CONE,
    REASON_REMOVED,
)
from repro.ir.commands import Call, Seq, seq
from repro.ir.parser import parse_program
from repro.ir.program import Program
from repro.typestate.properties import FILE_PROPERTY

from tests.test_property_based import programs

CHAIN = """
proc main { v = new h1; v.open(); call mid; v.close(); }
proc mid { call leaf; }
proc leaf { f = new h2; f.open(); f.close(); }
"""


def chain():
    return parse_program(CHAIN)


def edit_proc(program, proc):
    """Double ``proc``'s body — semantics-preserving for these tests'
    protocols is irrelevant; only the fingerprint change matters."""
    procs = dict(program.procedures)
    procs[proc] = Seq((procs[proc], procs[proc]))
    return Program(procs, main=program.main)


def run_twice(program, store_dir, engine="swift", domain="full", second=None, **kw):
    store = SummaryStore(store_dir)
    cold = analyze_with_store(
        program, FILE_PROPERTY, store, engine=engine, domain=domain, **kw
    )
    warm = analyze_with_store(
        second if second is not None else program,
        FILE_PROPERTY,
        store,
        engine=engine,
        domain=domain,
        **kw,
    )
    return cold, warm


# -- warm ≡ cold --------------------------------------------------------------------
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=programs())
def test_warm_equals_cold_td_full_domain(tmp_path_factory, program):
    """On an unchanged program a warm top-down run reproduces the cold
    run *exactly* — tables, entry counts, errors — while re-doing
    (far) under 10% of its work."""
    cold, warm = run_twice(
        program, tmp_path_factory.mktemp("store"), engine="td", domain="full"
    )
    assert warm.report.errors == cold.report.errors
    assert warm.report.result.td == cold.report.result.td
    assert dict(warm.report.result.entry_counts) == dict(
        cold.report.result.entry_counts
    )
    cold_work = cold.report.result.metrics.total_work
    assert warm.report.result.metrics.total_work <= 0.10 * cold_work
    assert warm.store_hits > 0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=programs())
def test_warm_equals_cold_swift_full_domain(tmp_path_factory, program):
    cold, warm = run_twice(
        program, tmp_path_factory.mktemp("store"), engine="swift", domain="full"
    )
    assert warm.report.errors == cold.report.errors
    assert warm.report.result.metrics.total_work <= 0.10 * (
        cold.report.result.metrics.total_work
    )
    assert warm.store_hits > 0


def test_warm_run_converges_to_stable_snapshot(tmp_path):
    """The second and third runs write byte-identical snapshots."""
    store = SummaryStore(tmp_path)
    program = chain()
    outs = [
        analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="full")
        for _ in range(3)
    ]
    path = Path(outs[1].snapshot_path)
    second = path.read_bytes()
    assert outs[2].snapshot_path == str(path)
    assert path.read_bytes() == second


# -- invalidation -------------------------------------------------------------------
def test_diff_classifies_body_cone_removed_added():
    base = ProgramFingerprints(chain())
    stored = base.as_dict()

    edited = ProgramFingerprints(edit_proc(chain(), "leaf"))
    plan = diff_fingerprints(stored, edited)
    assert plan.invalidated == {"leaf": REASON_BODY, "mid": REASON_CONE, "main": REASON_CONE}
    assert plan.valid == frozenset() and plan.added == frozenset()

    # Rename leaf -> twig: old name is removed, callers' cones change,
    # the new name shows up as added.
    renamed = parse_program(CHAIN.replace("leaf", "twig"))
    plan = diff_fingerprints(stored, ProgramFingerprints(renamed))
    assert plan.invalidated == {
        "leaf": REASON_REMOVED,
        "mid": REASON_BODY,  # mid's body text names its callee
        "main": REASON_CONE,
    }
    assert plan.added == frozenset({"twig"})

    # A new call edge changes only the caller's body and its callers' cones.
    procs = dict(chain().procedures)
    procs["mid"] = seq(procs["mid"], Call("leaf"))
    plan = diff_fingerprints(stored, ProgramFingerprints(Program(procs)))
    assert plan.invalidated == {"mid": REASON_BODY, "main": REASON_CONE}
    assert plan.valid == frozenset({"leaf"})


@pytest.mark.parametrize("engine", ["td", "swift"])
def test_one_proc_edit_reanalyzes_only_the_cone(tmp_path, engine):
    """After editing one leaf, the warm run invalidates exactly the
    edit cone (trace-event asserted) and matches a cold run's errors."""
    program = chain()
    edited = edit_proc(program, "leaf")
    sink = RingSink()
    _, warm = run_twice(
        program, tmp_path / "a", engine=engine, second=edited, sink=sink
    )
    cold_ref, _ = run_twice(edited, tmp_path / "b", engine=engine)
    assert warm.report.errors == cold_ref.report.errors
    cone = {"leaf", "mid", "main"}
    assert set(warm.invalidated) == cone
    invalidated_events = {
        e.proc for e in sink.events if e.kind == "store_invalidated"
    }
    assert invalidated_events == cone
    assert warm.store_invalidated == len(cone)
    # Nothing outside the cone was re-analyzed from scratch: every
    # surviving procedure's entries stayed valid.
    assert warm.valid == frozenset()  # chain(): the cone is the whole program


def test_edit_outside_cone_preserves_stored_entries(tmp_path):
    """Editing a procedure leaves siblings' contexts warm."""
    text = """
    proc main { v = new h1; v.open(); call left; call right; v.close(); }
    proc left { skip; }
    proc right { skip; }
    """
    program = parse_program(text)
    edited = edit_proc(program, "left")
    sink = RingSink()
    _, warm = run_twice(
        program, tmp_path, engine="td", second=edited, sink=sink
    )
    assert set(warm.invalidated) == {"left", "main"}
    assert warm.valid == frozenset({"right"})
    # right's stored context was activated, not recomputed.
    hits = [e for e in sink.events if e.kind == "store_hit" and e.proc == "right"]
    assert hits


# -- driver policies ----------------------------------------------------------------
def test_bu_engine_rejected(tmp_path):
    with pytest.raises(ValueError):
        analyze_with_store(
            chain(), FILE_PROPERTY, SummaryStore(tmp_path), engine="bu"
        )


def test_timed_out_runs_are_never_saved(tmp_path):
    store = SummaryStore(tmp_path)
    out = analyze_with_store(
        chain(),
        FILE_PROPERTY,
        store,
        engine="td",
        budget=Budget(max_work=2),
    )
    assert out.report.timed_out
    assert not out.saved and out.snapshot_path is None
    assert store.snapshot_paths() == []


def test_save_false_leaves_store_untouched(tmp_path):
    store = SummaryStore(tmp_path)
    out = analyze_with_store(chain(), FILE_PROPERTY, store, save=False)
    assert not out.saved
    assert store.snapshot_paths() == []


def test_cold_outcome_reports_added_procs(tmp_path):
    out = analyze_with_store(chain(), FILE_PROPERTY, SummaryStore(tmp_path))
    assert out.cold
    assert out.added == frozenset({"main", "mid", "leaf"})
    assert out.store_hits == 0 and out.store_invalidated == 0


def test_store_counters_not_in_total_work(tmp_path):
    _, warm = run_twice(chain(), tmp_path, engine="td")
    metrics = warm.report.result.metrics
    assert warm.store_hits > 0
    assert metrics.total_work == 0  # unchanged program: nothing recomputed


def test_configs_do_not_share_snapshots(tmp_path):
    store = SummaryStore(tmp_path)
    analyze_with_store(chain(), FILE_PROPERTY, store, engine="td")
    out = analyze_with_store(chain(), FILE_PROPERTY, store, engine="swift")
    assert out.cold  # td's snapshot must not serve a swift run
    assert len(store.snapshot_paths()) == 2


# -- hash-seed independence ---------------------------------------------------------
_SEED_SCRIPT = r"""
import sys, tempfile
from repro.incremental import SummaryStore, analyze_with_store
from repro.ir.parser import parse_program
from repro.typestate.properties import FILE_PROPERTY

program = parse_program('''
proc main { v = new h1; a = v; b = v; v.open(); call use; call use; v.close(); }
proc use { a.read(); b.read(); }
''')
with tempfile.TemporaryDirectory() as root:
    store = SummaryStore(root)
    for _ in range(2):
        out = analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="full")
    data = store.snapshot_paths()[0].read_bytes()
import hashlib
print(hashlib.sha256(data).hexdigest())
print(out.report.result.metrics.total_work, sorted(map(str, out.report.errors)))
"""


def test_snapshots_identical_across_hash_seeds():
    """Two interpreter processes with different PYTHONHASHSEED values
    write byte-identical snapshots and identical results."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    outputs = []
    for seed in ("12345", "999"):
        proc = subprocess.run(
            [sys.executable, "-c", _SEED_SCRIPT],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
