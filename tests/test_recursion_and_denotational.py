"""Engine agreement on recursive shapes + denotational interpreter units."""

import pytest

from repro.framework.bottomup import BottomUpEngine
from repro.framework.denotational import DenotationalInterpreter
from repro.framework.pruning import NoPruner
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.ir.builder import ProgramBuilder
from repro.ir.commands import Assign, Invoke, New, Skip, choice, seq, star
from repro.ir.program import Program
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState, bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD


def mutual_recursion_program() -> Program:
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v", "h1").assign("f", "v").call("ping")
    with b.proc("ping") as p:
        with p.choose() as c:
            with c.branch() as stop:
                stop.invoke("f", "open")
            with c.branch() as go:
                go.call("pong")
    with b.proc("pong") as p:
        with p.choose() as c:
            with c.branch() as stop:
                stop.skip()
            with c.branch() as go:
                go.invoke("f", "open").invoke("f", "close").call("ping")
    return b.build()


def self_loop_program() -> Program:
    """Recursion under a loop — the nastiest fixpoint interleaving."""
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v", "h1").assign("f", "v")
        with p.loop() as body:
            body.call("rec")
    with b.proc("rec") as p:
        with p.choose() as c:
            with c.branch() as stop:
                stop.invoke("f", "open").invoke("f", "close")
            with c.branch() as go:
                go.call("rec")
    return b.build()


RECURSIVE_PROGRAMS = [mutual_recursion_program(), self_loop_program()]


@pytest.mark.parametrize("program", RECURSIVE_PROGRAMS)
def test_td_matches_denotational_on_recursion(program):
    analysis = SimpleTypestateTD(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    oracle = DenotationalInterpreter(program, analysis).run(initial)
    result = TopDownEngine(program, analysis).run(initial)
    assert result.exit_states() == oracle


@pytest.mark.parametrize("program", RECURSIVE_PROGRAMS)
@pytest.mark.parametrize("k,theta", [(1, 1), (1, 4), (2, 2)])
def test_swift_matches_td_on_recursion(program, k, theta):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    td_result = TopDownEngine(program, td_analysis).run(initial)
    swift_result = SwiftEngine(
        program, td_analysis, bu_analysis, k=k, theta=theta
    ).run(initial)
    assert swift_result.exit_states() == td_result.exit_states()


@pytest.mark.parametrize("program", RECURSIVE_PROGRAMS)
def test_bu_coincides_on_recursion(program):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    result = BottomUpEngine(program, bu_analysis, pruner=NoPruner(bu_analysis)).analyze()
    oracle = DenotationalInterpreter(program, td_analysis)
    init = bootstrap_state(FILE_PROPERTY)
    for proc in program.reachable():
        expected = oracle.eval_proc(proc, frozenset([init]))
        actual = set()
        for r in result.summary(proc).relations:
            actual.update(bu_analysis.apply(r, init))
        assert frozenset(actual) == expected, proc


# -- denotational interpreter units ----------------------------------------------------
def _eval(cmd, states):
    program = Program({"main": cmd})
    interp = DenotationalInterpreter(program, SimpleTypestateTD(FILE_PROPERTY))
    return interp.eval(cmd, frozenset(states))


def test_denotational_choice_is_union():
    sigma = AbstractState("h1", "closed", frozenset({"f"}))
    cmd = choice(Invoke("f", "open"), Skip())
    out = _eval(cmd, [sigma])
    assert out == frozenset({sigma, sigma.with_state("opened")})


def test_denotational_star_accumulates_iterations():
    sigma = AbstractState("h1", "closed", frozenset({"f"}))
    # (open)*: zero iterations keep closed; one reaches opened; two, error.
    out = _eval(star(Invoke("f", "open")), [sigma])
    assert {s.state for s in out} == {"closed", "opened", "error"}


def test_denotational_seq_threads_states():
    sigma = AbstractState("h1", "closed", frozenset({"f"}))
    out = _eval(seq(Invoke("f", "open"), Invoke("f", "close")), [sigma])
    assert out == frozenset({sigma})


def test_denotational_empty_input_is_empty():
    assert _eval(seq(New("v", "h2"), Skip()), []) == frozenset()


def test_denotational_metrics_count_transfers():
    program = Program({"main": seq(Skip(), Skip())})
    interp = DenotationalInterpreter(program, SimpleTypestateTD(FILE_PROPERTY))
    out = interp.eval(program["main"], frozenset([bootstrap_state(FILE_PROPERTY)]))
    assert len(out) == 1
    assert interp.metrics.transfers == 2
