"""Batch demand-query planning (DESIGN §13).

The load-bearing property: every target's answer out of
:func:`repro.query.run_query_batch` is byte-identical to what the
single-target :func:`repro.query.run_query` path returns for it — the
planner only removes duplicated cone work, never changes verdicts.
Reachable targets share ``main`` through their caller closures, so
they always land in one component; extra components appear exactly
when the batch names targets in detached (main-unreachable)
subsystems, which are answered empty at zero cost.
"""

import threading
import time

import pytest

from repro.bench.workloads import hub_flood, scc_heavy, wide_fanout
from repro.framework.kernel import numpy_available
from repro.incremental import SummaryStore, analyze_with_store
from repro.ir.parser import parse_program
from repro.query import (
    QUERY_KINDS,
    QueryError,
    QueryTarget,
    UnknownTargetError,
    clear_query_cache,
    plan_batch,
    run_query,
    run_query_batch,
)
from repro.service.daemon import AnalysisService
from repro.typestate.properties import FILE_PROPERTY

#: main calls a/b; b is self-recursive; orphan is never called.
SHAPES = """
proc main { v = new h1; v.open(); call a; call b; v.close(); }
proc a { call b; }
proc b { choose { call b; } or { f = new h2; f.open(); f.read(); } }
proc orphan { g = new h3; g.open(); }
"""

#: A main program plus a detached two-proc subsystem (aux_top calls
#: aux_leaf; neither is reachable from main) — the shape that makes
#: the planner emit a second component.
DETACHED = """
proc main { v = new h1; v.open(); call work; v.close(); }
proc work { f = new h2; f.open(); f.read(); }
proc aux_top { call aux_leaf; }
proc aux_leaf { g = new h3; g.open(); g.read(); }
"""

KERNELS = ["object", "bitset"] + (["numpy"] if numpy_available() else [])


def sequential_answers(program, store, targets, **kwargs):
    return {
        str(t): run_query(program, FILE_PROPERTY, store, t, **kwargs).answer
        for t in targets
    }


def batch_answers(outcome):
    return {str(t): a for t, a in outcome.answers.items()}


# -- planning ---------------------------------------------------------------------------


def test_plan_reachable_targets_share_one_component():
    program = wide_fanout(32, seed=1)
    plan = plan_batch(program, ["worker0", "worker3", "worker7", "main"])
    assert plan.n_components == 1
    assert plan.n_solves == 1
    component = plan.components[0]
    assert {"main", "worker0", "worker3", "worker7"} <= component.solve_cone
    # The solve cone is exactly the union of the per-target cones:
    # caller-closed within the reachable program.
    for proc in component.solve_cone:
        callers = {
            caller
            for caller in program.names()
            if proc in program.callees(caller)
        }
        assert (callers & plan.reachable) <= component.solve_cone, proc


def test_plan_detached_subsystem_is_its_own_component():
    program = parse_program(DETACHED)
    plan = plan_batch(program, ["work", "aux_leaf"])
    assert plan.n_components == 2
    assert plan.n_solves == 1  # the detached component never solves
    solved = plan.component_of(QueryTarget("work"))
    skipped = plan.component_of(QueryTarget("aux_leaf"))
    assert solved.solvable and not skipped.solvable
    assert solved.solve_cone == frozenset({"main", "work"})
    # The detached closure still knows its members...
    assert skipped.procs == frozenset({"aux_top", "aux_leaf"})
    # ...but tabulates none of them.
    assert skipped.solve_cone == frozenset()


def test_plan_dedups_targets_and_keeps_input_order():
    program = parse_program(SHAPES)
    plan = plan_batch(program, ["b", "a", "b", "a:0"])
    assert plan.targets == (
        QueryTarget("b"),
        QueryTarget("a"),
        QueryTarget("a", 0),
    )
    # a and b connect through main's calls: one component.
    assert plan.n_components == 1


def test_plan_recursive_scc_stays_whole():
    program = parse_program(SHAPES)
    plan = plan_batch(program, ["b"])
    assert plan.components[0].solve_cone == frozenset({"main", "a", "b"})


def test_plan_rejects_empty_and_unknown():
    program = parse_program(SHAPES)
    with pytest.raises(QueryError):
        plan_batch(program, [])
    with pytest.raises(UnknownTargetError):
        plan_batch(program, ["a", "nosuch"])


# -- batch == sequential ----------------------------------------------------------------


@pytest.mark.parametrize("engine", ["td", "swift"])
@pytest.mark.parametrize("domain", ["simple", "full"])
def test_batch_matches_sequential_across_engines_and_domains(
    tmp_path, engine, domain
):
    program = hub_flood(5)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine=engine, domain=domain)
    targets = ["caller1", "caller3", "hub", "hub:2", "main"]
    for kind in QUERY_KINDS:
        clear_query_cache()
        outcome = run_query_batch(
            program, FILE_PROPERTY, store, targets,
            kind=kind, engine=engine, domain=domain,
        )
        clear_query_cache()
        want = sequential_answers(
            program, store, targets, kind=kind, engine=engine, domain=domain
        )
        assert batch_answers(outcome) == want, (engine, domain, kind)
        assert outcome.batch_components == 1
        assert outcome.solves == 1
        assert not outcome.cold
        assert outcome.out_of_cone_interior_rows == 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_batch_matches_sequential_across_kernels(tmp_path, kernel):
    program = scc_heavy(20, seed=2)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(
        program, FILE_PROPERTY, store, engine="swift", domain="simple",
        kernel=kernel,
    )
    targets = sorted(program.names())[:6]
    clear_query_cache()
    outcome = run_query_batch(
        program, FILE_PROPERTY, store, targets, kernel=kernel
    )
    clear_query_cache()
    want = sequential_answers(program, store, targets, kernel=kernel)
    assert batch_answers(outcome) == want


def test_batch_with_detached_targets_matches_sequential(tmp_path):
    program = parse_program(DETACHED)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="simple")
    targets = ["main", "work", "aux_top", "aux_leaf"]
    clear_query_cache()
    outcome = run_query_batch(program, FILE_PROPERTY, store, targets)
    clear_query_cache()
    want = sequential_answers(program, store, targets)
    assert batch_answers(outcome) == want
    assert outcome.batch_components == 2
    assert outcome.solves == 1
    # Detached targets cost nothing and answer empty for every kind.
    assert outcome.answer_for("aux_leaf") == frozenset()
    skipped = [c for c in outcome.components if not c.solved]
    assert len(skipped) == 1 and skipped[0].total_work == 0


def test_batch_cold_on_empty_store_matches_sequential(tmp_path):
    program = hub_flood(6)
    store = SummaryStore(tmp_path / "store")  # never populated
    targets = ["caller1", "caller4"]
    clear_query_cache()
    outcome = run_query_batch(program, FILE_PROPERTY, store, targets)
    assert outcome.cold
    clear_query_cache()
    want = sequential_answers(program, store, targets)
    assert batch_answers(outcome) == want


def test_parallel_components_match_serial(tmp_path):
    program = parse_program(DETACHED)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="simple")
    targets = ["work", "aux_leaf", "main"]
    clear_query_cache()
    serial = run_query_batch(program, FILE_PROPERTY, store, targets, max_workers=1)
    clear_query_cache()
    parallel = run_query_batch(program, FILE_PROPERTY, store, targets, max_workers=2)
    assert batch_answers(serial) == batch_answers(parallel)


def test_batch_never_writes_the_store(tmp_path):
    program = hub_flood(6)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="td", domain="simple")
    before = sorted(p.name for p in (tmp_path / "store").iterdir())
    run_query_batch(
        program, FILE_PROPERTY, store, ["caller2", "caller3"], engine="td"
    )
    after = sorted(p.name for p in (tmp_path / "store").iterdir())
    assert before == after


def test_batch_validates_kind_precision_workers(tmp_path):
    program = parse_program(SHAPES)
    store = SummaryStore(tmp_path / "store")
    with pytest.raises(QueryError):
        run_query_batch(program, FILE_PROPERTY, store, ["a"], kind="vibes")
    with pytest.raises(QueryError):
        run_query_batch(
            program, FILE_PROPERTY, store, ["a"], query_precision="banana"
        )
    with pytest.raises(ValueError):
        run_query_batch(program, FILE_PROPERTY, store, ["a"], max_workers=0)


def test_attribution_names_each_targets_component(tmp_path):
    program = parse_program(DETACHED)
    store = SummaryStore(tmp_path / "store")
    analyze_with_store(program, FILE_PROPERTY, store, engine="swift", domain="simple")
    outcome = run_query_batch(
        program, FILE_PROPERTY, store, ["work", "aux_leaf"]
    )
    rows = outcome.attribution()
    assert [row["target"] for row in rows] == ["work", "aux_leaf"]
    by_target = {row["target"]: row for row in rows}
    assert by_target["work"]["solved"]
    assert not by_target["aux_leaf"]["solved"]
    assert by_target["work"]["component"] != by_target["aux_leaf"]["component"]


# -- the service batch demand op --------------------------------------------------------


def _service_with(tmp_path, program_src, cfg):
    service = AnalysisService(tmp_path / "svc")
    ran = service.handle(
        {"op": "analyze", "program": program_src, "format": "ir",
         "property": "File", "config": cfg}
    )
    assert ran["ok"]
    return service


def test_service_batch_demand_matches_single_demands(tmp_path):
    from repro.ir.printer import format_program

    program = hub_flood(5)
    src = format_program(program)
    cfg = {"engine": "td", "domain": "simple"}
    service = _service_with(tmp_path, src, cfg)
    targets = ["caller1", "caller3", "hub"]
    batch = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "targets": targets, "config": cfg, "id": "batch-1"}
    )
    assert batch["ok"] and batch["batch"]
    assert batch["id"] == "batch-1"
    assert batch["targets"] == targets
    assert batch["batch_components"] == 1 and batch["solves"] == 1
    assert not batch["coalesced"]
    assert batch["out_of_cone_interior_rows"] == 0
    for target in targets:
        single = service.handle(
            {"op": "demand", "program": src, "format": "ir",
             "property": "File", "target": target, "config": cfg}
        )
        assert batch["answers"][target] == single["answer"], target
    stats = service.handle({"op": "stats"})
    assert stats["batch_demands"] == 1
    assert stats["demands"] == 1 + len(targets)
    assert stats["demand_coalesced"] == 0


def test_service_batch_demand_validates_targets(tmp_path):
    from repro.ir.printer import format_program

    src = format_program(hub_flood(4))
    service = AnalysisService(tmp_path / "svc")
    empty = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "targets": []}
    )
    assert not empty["ok"]
    bad = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "targets": ["hub", 7]}
    )
    assert not bad["ok"]
    unknown = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "targets": ["hub", "nosuch"]}
    )
    assert not unknown["ok"]


def test_service_coalesces_overlapping_batches(tmp_path, monkeypatch):
    from repro.ir.printer import format_program
    import repro.query as query_mod

    program = hub_flood(5)
    src = format_program(program)
    cfg = {"engine": "td", "domain": "simple"}
    service = _service_with(tmp_path, src, cfg)

    real = query_mod.run_query_batch
    entered = threading.Event()
    release = threading.Event()

    def slow_batch(*args, **kwargs):
        entered.set()
        assert release.wait(timeout=30.0)
        return real(*args, **kwargs)

    monkeypatch.setattr(query_mod, "run_query_batch", slow_batch)

    responses = {}

    def run(name, targets):
        responses[name] = service.handle(
            {"op": "demand", "program": src, "format": "ir",
             "property": "File", "targets": targets, "config": cfg,
             "id": name}
        )

    leader = threading.Thread(
        target=run, args=("leader", ["caller1", "caller2", "hub"])
    )
    leader.start()
    assert entered.wait(timeout=30.0)
    # Subset of the in-flight batch: waits for the leader, projects.
    waiter = threading.Thread(target=run, args=("waiter", ["caller2", "hub"]))
    waiter.start()
    # demand_coalesced ticks at registration time: once it reads 1 the
    # waiter is parked on the leader's flight.
    for _ in range(600):
        if service.handle({"op": "stats"})["demand_coalesced"] == 1:
            break
        time.sleep(0.05)
    else:
        pytest.fail("waiter never coalesced onto the in-flight batch")
    # A disjoint batch must NOT coalesce (it would get wrong targets).
    monkeypatch.setattr(query_mod, "run_query_batch", real)
    other = service.handle(
        {"op": "demand", "program": src, "format": "ir", "property": "File",
         "targets": ["caller4"], "config": cfg}
    )
    assert other["ok"] and not other["coalesced"]
    release.set()
    leader.join(timeout=30.0)
    waiter.join(timeout=30.0)
    assert not leader.is_alive() and not waiter.is_alive()

    lead, wait_ = responses["leader"], responses["waiter"]
    assert lead["ok"] and not lead["coalesced"]
    assert wait_["ok"] and wait_["coalesced"]
    assert wait_["id"] == "waiter"
    assert wait_["targets"] == ["caller2", "hub"]
    assert set(wait_["answers"]) == {"caller2", "hub"}
    for target in wait_["targets"]:
        assert wait_["answers"][target] == lead["answers"][target]
    assert [row["target"] for row in wait_["attribution"]] == [
        "caller2", "hub",
    ]
    stats = service.handle({"op": "stats"})
    assert stats["demand_coalesced"] == 1
    assert stats["batch_demands"] == 2  # leader + the disjoint batch
