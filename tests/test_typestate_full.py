"""Tests for the full type-state analysis (must + must-not + may-alias).

Includes the headline reproduction of Figure 1: the bottom-up analysis
of ``foo(f){ f.open(); f.close(); }`` yields exactly the four summaries
B1-B4, with B2's type-state transformer being ``ι_close ∘ ι_open``.
"""

import itertools

import pytest

from repro.framework.conditions import check_c1, check_c2, check_c3
from repro.framework.predicates import FALSE, TRUE, Conjunction
from repro.framework.synthesis import SynthesizedTopDown
from repro.ir.commands import Assign, FieldLoad, FieldStore, Invoke, New, Skip
from repro.typestate.dfa import ERROR
from repro.typestate.full import (
    FullAbstractState,
    FullConstRelation,
    FullTransformerRelation,
    FullTypestateBU,
    FullTypestateTD,
    InMust,
    InMustNot,
    NotInMust,
    NotInMustNot,
    full_bootstrap_state,
)
from repro.typestate.full.oracle import AllMayAlias, NoMayAlias, PointsToOracle
from repro.typestate.full.paths import HasField, Rooted
from repro.typestate.properties import FILE_PROPERTY

VARS = ["f", "g"]
SITES = ["h1", "h2"]


def _oracle():
    return AllMayAlias(SITES)


def _states(max_size=1, paths=("f", "g")):
    """Small exhaustive universe of four-component states."""
    out = []
    subsets = [frozenset()] + [frozenset({p}) for p in paths]
    if max_size >= 2:
        subsets += [frozenset(c) for c in itertools.combinations(paths, 2)]
    for site in SITES + ["<boot>"]:
        for ts in FILE_PROPERTY.states:
            for must in subsets:
                for mustnot in subsets:
                    if must & mustnot:
                        continue
                    out.append(FullAbstractState(site, ts, must, mustnot))
    return out


def _prims():
    return [
        Skip(),
        New("f", "h1"),
        New("g", "h2"),
        Assign("f", "g"),
        Assign("g", "f"),
        FieldLoad("f", "g", "fld"),
        FieldStore("g", "fld", "f"),
        Invoke("f", "open"),
        Invoke("g", "close"),
        Invoke("f", "toString"),
    ]


def _relations(bu):
    relations = [bu.identity()]
    empty = frozenset()
    iotas = [FILE_PROPERTY.identity_function(), FILE_PROPERTY.method_function("open")]
    preds = [TRUE, Conjunction.of([InMust("f")]), Conjunction.of([InMustNot("g")])]
    for iota in iotas:
        for pred in preds:
            relations.append(
                FullTransformerRelation(iota, empty, empty, empty, empty, pred)
            )
            relations.append(
                FullTransformerRelation(
                    iota,
                    frozenset({Rooted("f")}),
                    empty,
                    frozenset({Rooted("f")}),
                    frozenset({"f"}),
                    pred,
                )
            )
            relations.append(
                FullTransformerRelation(
                    iota,
                    frozenset({HasField("fld")}),
                    frozenset({"g"}),
                    frozenset({HasField("fld"), Rooted("g")}),
                    empty,
                    pred,
                )
            )
    relations.append(
        FullConstRelation(
            FullAbstractState("h1", "closed", frozenset({"f"}), frozenset()), TRUE
        )
    )
    return relations


@pytest.fixture(scope="module")
def bu():
    return FullTypestateBU(FILE_PROPERTY, _oracle())


@pytest.fixture(scope="module")
def td():
    return FullTypestateTD(FILE_PROPERTY, _oracle())


# -- Figure 1 reproduction -----------------------------------------------------------
def test_figure1_bottom_up_summaries_b1_to_b4(bu):
    """foo's body yields exactly the paper's four cases B1-B4."""
    relations = {bu.identity()}
    for cmd in [Invoke("f", "open"), Invoke("f", "close")]:
        new = set()
        for r in relations:
            new.update(bu.rtransfer(cmd, r))
        relations = new
    assert len(relations) == 4
    by_pred = {str(r.pred): r for r in relations}
    # B1: f in the must-not set — identity.
    b1 = by_pred["inMustNot(f)"]
    assert b1.iota.is_identity()
    # B2: f in the must set — strong update iota_close ∘ iota_open.
    b2 = by_pred["inMust(f)"]
    assert b2.iota("closed") == "closed"
    assert b2.iota("opened") == ERROR
    # B3: neither + may-alias — weak update to error.
    b3 = next(
        r
        for key, r in by_pred.items()
        if "mayalias(f:" in key and "!mayalias(f:" not in key
    )
    assert b3.iota("closed") == ERROR
    # B4: neither + definitely-not-alias — identity.
    b4 = next(r for key, r in by_pred.items() if "!mayalias(f:" in key)
    assert b4.iota.is_identity()


def test_bootstrap_object_never_errors(td):
    """With may-alias reasoning, calls on unrelated receivers leave the
    bootstrap object alone (unlike the simplified Figure 2 analysis)."""
    boot = full_bootstrap_state(FILE_PROPERTY)
    (out,) = td.transfer(Invoke("f", "open"), boot)
    assert out.state != ERROR


# -- top-down transfer behaviour --------------------------------------------------------
def test_td_new_updates_mustnot(td):
    sigma = FullAbstractState("h1", "closed", frozenset({"f"}), frozenset())
    out = td.transfer(New("g", "h2"), sigma)
    survivor = next(s for s in out if s.site == "h1")
    assert "g" in survivor.mustnot and "f" in survivor.must
    fresh = next(s for s in out if s.site == "h2")
    assert fresh.must == frozenset({"g"}) and fresh.mustnot == frozenset()


def test_td_assign_inherits_mustnot(td):
    sigma = FullAbstractState("h1", "closed", frozenset(), frozenset({"g"}))
    (out,) = td.transfer(Assign("f", "g"), sigma)
    assert "f" in out.mustnot


def test_td_invoke_mustnot_is_noop(td):
    sigma = FullAbstractState("h1", "closed", frozenset(), frozenset({"f"}))
    (out,) = td.transfer(Invoke("f", "open"), sigma)
    assert out == sigma


def test_td_invoke_neither_mayalias_weak_update(td):
    sigma = FullAbstractState("h1", "closed", frozenset(), frozenset())
    (out,) = td.transfer(Invoke("f", "open"), sigma)
    assert out.state == ERROR


def test_td_invoke_neither_no_alias_noop():
    td = FullTypestateTD(FILE_PROPERTY, NoMayAlias())
    sigma = FullAbstractState("h1", "closed", frozenset(), frozenset())
    (out,) = td.transfer(Invoke("f", "open"), sigma)
    assert out == sigma


def test_td_points_to_oracle_selective():
    oracle = PointsToOracle({"f": frozenset({"h1"})})
    td = FullTypestateTD(FILE_PROPERTY, oracle)
    at_h1 = FullAbstractState("h1", "closed", frozenset(), frozenset())
    at_h2 = FullAbstractState("h2", "closed", frozenset(), frozenset())
    assert next(iter(td.transfer(Invoke("f", "open"), at_h1))).state == ERROR
    assert next(iter(td.transfer(Invoke("f", "open"), at_h2))).state == "closed"


def test_td_store_invalidates_field_paths(td):
    sigma = FullAbstractState(
        "h1", "closed", frozenset({"g.fld", "f"}), frozenset({"g.fld.x"})
    )
    (out,) = td.transfer(FieldStore("g", "fld", "f"), sigma)
    # All .fld paths invalidated; g.fld re-established because f is must.
    assert out.must == frozenset({"f", "g.fld"})
    assert out.mustnot == frozenset()


def test_td_load_inherits_path_status(td):
    sigma = FullAbstractState("h1", "closed", frozenset({"g.fld"}), frozenset())
    (out,) = td.transfer(FieldLoad("f", "g", "fld"), sigma)
    assert "f" in out.must


def test_state_invariant_enforced():
    with pytest.raises(ValueError):
        FullAbstractState("h1", "closed", frozenset({"f"}), frozenset({"f"}))


# -- conditions C1-C3 ----------------------------------------------------------------------
def test_full_condition_c1(td, bu):
    problems = check_c1(td, bu, _prims(), _relations(bu), _states())
    assert not problems, problems[:5]


def test_full_condition_c2(bu):
    relations = _relations(bu)
    pairs = list(itertools.product(relations, relations))
    problems = check_c2(bu, pairs, _states())
    assert not problems, problems[:5]


def test_full_condition_c3(bu):
    preds = [TRUE]
    for atom in [InMust("f"), NotInMust("f"), InMustNot("g"), NotInMustNot("g")]:
        preds.append(Conjunction.of([atom]))
    problems = check_c3(bu, _relations(bu), preds, _states())
    assert not problems, problems[:5]


def test_full_synthesized_td_matches(td, bu):
    synthesized = SynthesizedTopDown(bu)
    for cmd in _prims():
        for sigma in _states():
            assert synthesized.transfer(cmd, sigma) == td.transfer(cmd, sigma)
