"""Property-based tests (hypothesis) for the core invariants.

Random small programs drive the headline guarantees:

* SWIFT ≡ TD for arbitrary thresholds (the paper's Theorem 3.1 /
  Section 2.4 equivalence claim);
* the unpruned bottom-up analysis coincides with the denotational
  semantics on every procedure (coincidence with Σ = ∅);
* pruned summaries coincide on every state outside the ignored set;
* the printer/parser round-trip;
* algebraic laws of the symbolic pieces (type-state functions,
  predicates, relations).
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.framework.bottomup import BottomUpEngine
from repro.framework.denotational import DenotationalInterpreter
from repro.framework.pruning import FrequencyPruner, NoPruner
from repro.framework.swift import SwiftEngine
from repro.framework.topdown import TopDownEngine
from repro.ir.commands import Assign, Call, Invoke, New, Skip, choice, seq, star
from repro.ir.parser import parse_program
from repro.ir.printer import format_program
from repro.ir.program import Program
from repro.typestate.bu_analysis import SimpleTypestateBU
from repro.typestate.dfa import TSFunction
from repro.typestate.properties import FILE_PROPERTY
from repro.typestate.states import AbstractState, bootstrap_state
from repro.typestate.td_analysis import SimpleTypestateTD

VARS = ["a", "b", "f"]
SITES = ["h1", "h2"]
METHODS = ["open", "close", "read"]

prims = st.one_of(
    st.just(Skip()),
    st.builds(New, st.sampled_from(VARS), st.sampled_from(SITES)),
    st.builds(Assign, st.sampled_from(VARS), st.sampled_from(VARS)),
    st.builds(Invoke, st.sampled_from(VARS), st.sampled_from(METHODS)),
)


def commands(call_targets):
    """Commands of bounded depth, calling only the given procedures."""
    leaves = prims if not call_targets else st.one_of(
        prims, st.builds(Call, st.sampled_from(call_targets))
    )
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.lists(inner, min_size=2, max_size=3).map(lambda cs: seq(*cs)),
            st.lists(inner, min_size=2, max_size=2).map(lambda cs: choice(*cs)),
            inner.map(star),
        ),
        max_leaves=6,
    )


@st.composite
def programs(draw):
    """A random program: main plus up to two helpers (no recursion:
    helpers may call only later helpers)."""
    n_helpers = draw(st.integers(min_value=0, max_value=2))
    helper_names = [f"p{i}" for i in range(n_helpers)]
    procs = {}
    for i, name in enumerate(helper_names):
        procs[name] = draw(commands(helper_names[i + 1 :]))
    procs["main"] = draw(commands(helper_names))
    return Program(procs)


@st.composite
def abstract_states(draw):
    site = draw(st.sampled_from(SITES + ["<boot>"]))
    ts = draw(st.sampled_from(FILE_PROPERTY.states))
    must = frozenset(draw(st.sets(st.sampled_from(VARS), max_size=2)))
    return AbstractState(site, ts, must)


ENGINE_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@ENGINE_SETTINGS
@given(program=programs(), k=st.integers(1, 4), theta=st.integers(1, 3))
def test_swift_equals_td_on_random_programs(program, k, theta):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    initial = [bootstrap_state(FILE_PROPERTY)]
    td_result = TopDownEngine(program, td_analysis).run(initial)
    swift_result = SwiftEngine(
        program, td_analysis, bu_analysis, k=k, theta=theta
    ).run(initial)
    assert swift_result.exit_states() == td_result.exit_states()
    for point in swift_result.cfgs["main"].points:
        assert swift_result.states_at(point) == td_result.states_at(point)


@ENGINE_SETTINGS
@given(program=programs())
def test_unpruned_bottom_up_coincides(program):
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    result = BottomUpEngine(program, bu_analysis, pruner=NoPruner(bu_analysis)).analyze()
    oracle = DenotationalInterpreter(program, td_analysis)
    init = bootstrap_state(FILE_PROPERTY)
    for proc in program.reachable():
        summary = result.summary(proc)
        assert summary.ignored.is_empty()
        expected = oracle.eval_proc(proc, frozenset([init]))
        actual = set()
        for r in summary.relations:
            actual.update(bu_analysis.apply(r, init))
        assert frozenset(actual) == expected


@ENGINE_SETTINGS
@given(program=programs(), sigma=abstract_states(), theta=st.integers(1, 2))
def test_pruned_summaries_coincide_outside_sigma(program, sigma, theta):
    """Theorem 3.1: on states the pruned analysis did not ignore, its
    summaries equal the top-down semantics."""
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    pruner = FrequencyPruner(bu_analysis, theta=theta, incoming={})
    result = BottomUpEngine(program, bu_analysis, pruner=pruner).analyze()
    oracle = DenotationalInterpreter(program, td_analysis)
    for proc in program.reachable():
        summary = result.summary(proc)
        if sigma in summary.ignored:
            continue
        expected = oracle.eval_proc(proc, frozenset([sigma]))
        actual = set()
        for r in summary.relations:
            actual.update(bu_analysis.apply(r, sigma))
        assert frozenset(actual) == expected, proc


@settings(max_examples=60, deadline=None)
@given(program=programs())
def test_print_parse_round_trip(program):
    reparsed = parse_program(format_program(program))
    assert set(reparsed) == set(program)
    for name in program:
        assert reparsed[name] == program[name]


# -- algebraic laws -----------------------------------------------------------------------
ts_functions = st.sampled_from(
    [
        FILE_PROPERTY.identity_function(),
        FILE_PROPERTY.error_function(),
        FILE_PROPERTY.method_function("open"),
        FILE_PROPERTY.method_function("close"),
        FILE_PROPERTY.constant_function("closed"),
    ]
)


@given(f=ts_functions, g=ts_functions, h=ts_functions)
def test_ts_function_composition_associative(f, g, h):
    assert f.compose_after(g.compose_after(h)) == f.compose_after(g).compose_after(h)


@given(f=ts_functions)
def test_ts_function_identity_laws(f):
    ident = FILE_PROPERTY.identity_function()
    assert f.compose_after(ident) == f
    assert ident.compose_after(f) == f


@given(f=ts_functions, g=ts_functions, t=st.sampled_from(FILE_PROPERTY.states))
def test_ts_function_composition_pointwise(f, g, t):
    assert f.compose_after(g)(t) == f(g(t))


@given(sigma=abstract_states(), cmd=prims)
def test_c1_pointwise_on_random_states(sigma, cmd):
    """C1 instantiated at id#: trans(c)(σ) equals applying rtrans(c)(id#)."""
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    via_bu = set()
    for r in bu_analysis.rtransfer(cmd, bu_analysis.identity()):
        via_bu.update(bu_analysis.apply(r, sigma))
    assert frozenset(via_bu) == td_analysis.transfer(cmd, sigma)


@given(
    sigma=abstract_states(),
    cmds=st.lists(prims, min_size=1, max_size=4),
)
def test_c2_pointwise_composition_chains(sigma, cmds):
    """Composing the per-command relations equals running them in
    sequence, for every start state (condition C2 along chains)."""
    td_analysis = SimpleTypestateTD(FILE_PROPERTY)
    bu_analysis = SimpleTypestateBU(FILE_PROPERTY)
    # Path-sensitively compose one relation per command.
    composed = {bu_analysis.identity()}
    for cmd in cmds:
        step = set()
        for r in composed:
            step.update(bu_analysis.rtransfer(cmd, r))
        composed = step
    via_relations = set()
    for r in composed:
        via_relations.update(bu_analysis.apply(r, sigma))
    states = {sigma}
    for cmd in cmds:
        states = set(td_analysis.transfer_set(cmd, states))
    assert frozenset(via_relations) == frozenset(states)
