"""Protocol-trace tests: every built-in type-state property, end to end.

For each DFA in the library, a well-behaved trace must verify clean and
a protocol-violating trace must produce an error — through the full
analysis pipeline, not just the DFA stepper.
"""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.typestate.client import run_typestate
from repro.typestate.properties import all_properties, property_by_name

#: (property, good trace, bad trace) — traces are method sequences
#: invoked on one tracked object.
TRACES = [
    ("File", ["open", "read", "write", "close"], ["open", "open"]),
    ("File", ["open", "close", "open", "close"], ["close"]),
    ("Iterator", ["hasNext", "next", "hasNext", "next"], ["next"]),
    ("Iterator", ["hasNext", "hasNext", "next"], ["hasNext", "next", "next"]),
    ("Connection", ["connect", "send", "recv", "disconnect"], ["send"]),
    ("Signature", ["initSign", "update", "sign"], ["update"]),
    ("Signature", ["initSign", "sign", "initSign", "sign"], ["initSign", "sign", "sign"]),
    ("Stack", ["push", "pop", "peek"], ["pop"]),
    ("Enumeration", ["hasMoreElements", "nextElement"], ["nextElement"]),
    ("KeyStore", ["load", "getKey", "aliases"], ["getKey"]),
    ("PrintStream", ["print", "println", "closeStream"], ["closeStream", "print"]),
    ("URLConn", ["setDoOutput", "connectURL", "getInputStream"], ["connectURL", "setDoOutput"]),
    ("Vector", ["addElement", "elementAt", "removeAll"], ["elementAt"]),
    ("Socket", ["bind", "connectSock", "sendTo", "closeSock"], ["connectSock"]),
]


def _trace_program(methods):
    b = ProgramBuilder()
    with b.proc("main") as p:
        p.new("v", "h1").assign("x", "v")
        for m in methods:
            p.invoke("x", m)
    return b.build()


@pytest.mark.parametrize(
    "prop_name,good,bad", TRACES, ids=[f"{t[0]}-{i}" for i, t in enumerate(TRACES)]
)
@pytest.mark.parametrize("engine", ["td", "swift"])
def test_protocol_traces(prop_name, good, bad, engine):
    prop = property_by_name(prop_name)
    ok = run_typestate(_trace_program(good), prop, engine=engine, domain="full", k=1)
    assert ok.errors == frozenset(), f"{prop_name}: good trace flagged"
    broken = run_typestate(_trace_program(bad), prop, engine=engine, domain="full", k=1)
    assert broken.error_sites == frozenset({"h1"}), f"{prop_name}: bad trace missed"


def test_every_property_has_a_trace_test():
    covered = {name for name, _, _ in TRACES}
    assert covered == {p.name for p in all_properties()}
