"""Unit tests for the textual IR frontend and printer round-trips."""

import pytest

from repro.ir.commands import Assign, Call, FieldLoad, FieldStore, Invoke, New, Skip
from repro.ir.parser import ParseError, parse_command, parse_program
from repro.ir.printer import count_lines, format_program

from tests.helpers import all_small_programs


def test_parse_prims():
    assert parse_command("v = new h1;") == New("v", "h1")
    assert parse_command("v = w;") == Assign("v", "w")
    assert parse_command("v.open();") == Invoke("v", "open")
    assert parse_command("v = w.f;") == FieldLoad("v", "w", "f")
    assert parse_command("v.f = w;") == FieldStore("v", "f", "w")
    assert parse_command("skip;") == Skip()
    assert parse_command("call foo;") == Call("foo")


def test_parse_structured():
    cmd = parse_command(
        """
        a = new h;
        choose { a.open(); } or { skip; }
        loop { a.close(); }
        """
    )
    text = str(cmd)
    assert "a = new h" in text
    assert "+" in text  # choice
    assert "*" in text  # loop


def test_parse_program_with_comments():
    program = parse_program(
        """
        # entry point
        proc main {
            v = new h1;   # allocate
            call helper;
        }
        proc helper { v.open(); }
        """
    )
    assert set(program) == {"main", "helper"}


def test_parse_error_reports_line():
    with pytest.raises(ParseError) as info:
        parse_program("proc main {\n v = ;\n}")
    assert "line 2" in str(info.value)


def test_duplicate_procedure_rejected():
    with pytest.raises(ParseError):
        parse_program("proc main { skip; } proc main { skip; }")


def test_choose_requires_two_branches():
    with pytest.raises(ParseError):
        parse_command("choose { skip; }")


@pytest.mark.parametrize("program", all_small_programs(), ids=lambda p: p.metadata.get("name", repr(p)))
def test_print_parse_round_trip(program):
    text = format_program(program)
    reparsed = parse_program(text)
    assert set(reparsed) == set(program)
    for name in program:
        assert reparsed[name] == program[name]


def test_count_lines_positive():
    for program in all_small_programs():
        assert count_lines(program) > 0
