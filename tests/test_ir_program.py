"""Unit tests for Program (repro.ir.program)."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.commands import Call, Invoke, New, Skip, seq
from repro.ir.program import Program

from tests.helpers import figure1_program, recursive_program


def test_program_requires_main():
    with pytest.raises(ValueError):
        Program({"foo": Skip()})


def test_program_mapping_interface():
    program = figure1_program()
    assert "foo" in program
    assert "bar" not in program
    assert len(program) == 2
    assert set(program) == {"main", "foo"}


def test_universes():
    program = figure1_program()
    assert program.allocation_sites() == frozenset({"h1", "h2", "h3"})
    assert program.invoked_methods() == frozenset({"open", "close"})
    assert {"v1", "v2", "v3", "f"} <= set(program.variables())


def test_callees_and_callers():
    program = figure1_program()
    assert program.callees("main") == frozenset({"foo"})
    assert program.callees("foo") == frozenset()
    callers = program.callers()
    assert callers["foo"] == frozenset({"main"})
    assert callers["main"] == frozenset()


def test_reachability():
    b = ProgramBuilder()
    b.define("main", Call("a"))
    b.define("a", Call("b"))
    b.define("b", Skip())
    b.define("orphan", Skip())
    program = b.build()
    assert program.reachable() == frozenset({"main", "a", "b"})
    assert program.reachable_from("a") == frozenset({"a", "b"})


def test_topological_order_callers_first():
    b = ProgramBuilder()
    b.define("main", seq(Call("mid"), Call("leaf")))
    b.define("mid", Call("leaf"))
    b.define("leaf", Skip())
    order = b.build().topological_order()
    assert order.index("main") < order.index("mid") < order.index("leaf")


def test_is_recursive():
    assert not figure1_program().is_recursive()
    assert recursive_program().is_recursive()


def test_mutual_recursion_detected():
    b = ProgramBuilder()
    b.define("main", Call("a"))
    b.define("a", Call("b"))
    b.define("b", Call("a"))
    assert b.build().is_recursive()


def test_metadata_round_trip():
    program = Program({"main": Skip()}, metadata={"suite": "test"})
    assert program.metadata["suite"] == "test"
