"""Unit tests for type-state DFAs and TSFunctions."""

import pytest

from repro.typestate.dfa import ERROR, TSFunction, TypestateProperty
from repro.typestate.properties import (
    FILE_PROPERTY,
    ITERATOR_PROPERTY,
    all_properties,
    property_by_name,
)


def test_property_construction_validates():
    with pytest.raises(ValueError):
        TypestateProperty("P", ["error"], "error", {})
    with pytest.raises(ValueError):
        TypestateProperty("P", ["a"], "b", {})
    with pytest.raises(ValueError):
        TypestateProperty("P", ["a"], "a", {("a", "m"): "zzz"})


def test_file_property_steps():
    assert FILE_PROPERTY.step("closed", "open") == "opened"
    assert FILE_PROPERTY.step("opened", "close") == "closed"
    # Tracked method in the wrong state falls to error …
    assert FILE_PROPERTY.step("closed", "close") == ERROR
    assert FILE_PROPERTY.step("closed", "read") == ERROR
    # … untracked methods are identity, and error is a sink.
    assert FILE_PROPERTY.step("closed", "toString") == "closed"
    assert FILE_PROPERTY.step(ERROR, "open") == ERROR


def test_method_function_none_for_untracked():
    assert FILE_PROPERTY.method_function("toString") is None
    fn = FILE_PROPERTY.method_function("open")
    assert fn("closed") == "opened" and fn("opened") == ERROR


def test_iterator_protocol():
    assert ITERATOR_PROPERTY.step("start", "next") == ERROR
    assert ITERATOR_PROPERTY.step("start", "hasNext") == "checked"
    assert ITERATOR_PROPERTY.step("checked", "next") == "start"


def test_ts_function_canonical_and_hashable():
    f1 = FILE_PROPERTY.method_function("open")
    f2 = TSFunction.of(FILE_PROPERTY.states, lambda t: FILE_PROPERTY.step(t, "open"))
    assert f1 == f2 and hash(f1) == hash(f2)
    assert len({f1, f2}) == 1


def test_ts_function_composition_matches_paper_example():
    """iota_close ∘ iota_open: closed ↦ closed, opened ↦ error."""
    open_fn = FILE_PROPERTY.method_function("open")
    close_fn = FILE_PROPERTY.method_function("close")
    composed = close_fn.compose_after(open_fn)
    assert composed("closed") == "closed"
    assert composed("opened") == ERROR
    assert composed(ERROR) == ERROR


def test_identity_and_constant_functions():
    ident = FILE_PROPERTY.identity_function()
    assert ident.is_identity()
    const = FILE_PROPERTY.error_function()
    assert all(const(t) == ERROR for t in FILE_PROPERTY.states)
    assert not const.is_identity()
    with pytest.raises(ValueError):
        FILE_PROPERTY.constant_function("nope")


def test_ts_function_repr_forms():
    assert repr(FILE_PROPERTY.identity_function()) == "ι_id"
    assert "error" in repr(FILE_PROPERTY.error_function())
    assert "->" in repr(FILE_PROPERTY.method_function("open"))


def test_property_library_consistent():
    props = all_properties()
    assert len(props) >= 10
    names = {p.name for p in props}
    assert len(names) == len(props)
    for prop in props:
        assert prop.initial in prop.states
        assert ERROR == prop.states[-1]
        assert prop.methods, f"{prop.name} tracks no methods"
        # Every tracked method in every state lands inside the DFA.
        for t in prop.states:
            for m in prop.methods:
                assert prop.step(t, m) in prop.states


def test_property_by_name():
    assert property_by_name("File") is FILE_PROPERTY
    with pytest.raises(KeyError):
        property_by_name("Nope")
