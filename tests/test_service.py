"""Tests for the resident analysis service (daemon, front ends, client)."""

import io
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.service.daemon as daemon_mod
from repro.frontend import compile_minioo
from repro.ir.printer import format_program
from repro.service import (
    AnalysisService,
    ProtocolError,
    ServiceClient,
    ServiceError,
    StdioFrontend,
    config_from_json,
    make_server,
    program_digest,
)
from repro.typestate.client import run_typestate
from repro.typestate.properties import FILE_PROPERTY

GOOD_MINI = """
class Writer { method flush(f) { f.#open(); f.#close(); } }
main { w = new Writer(); r = new Writer(); w.flush(r); }
"""

BAD_MINI = """
class Writer { method close2(f) { f.#close(); f.#close(); } }
main { w = new Writer(); r = new Writer(); r.#open(); w.close2(r); }
"""

EDITED_MINI = """
class Writer { method flush(f) { f.#open(); f.#close(); } }
class Extra { method noop(g) { g.#open(); g.#close(); } }
main { w = new Writer(); r = new Writer(); w.flush(r); x = new Extra(); x.noop(r); }
"""


@pytest.fixture
def service(tmp_path):
    return AnalysisService(tmp_path / "root", lru_size=4)


# -- analyze round trips --------------------------------------------------------------
def test_analyze_cold_then_warm(service):
    first = service.handle({"op": "analyze", "program": GOOD_MINI})
    assert first["ok"] and first["cold"] and first["work"] > 0
    assert first["errors"] == [] and not first["timed_out"]
    second = service.handle({"op": "analyze", "program": GOOD_MINI})
    assert second["ok"] and not second["cold"]
    assert second["work"] == 0 and second["store_hits"] > 0


def test_analyze_matches_direct_session_run(service):
    response = service.handle({"op": "analyze", "program": BAD_MINI})
    program = compile_minioo(BAD_MINI)
    direct = run_typestate(program, FILE_PROPERTY, engine="swift", domain="full")
    expected = [
        [str(point), site] for point, site in sorted(direct.errors, key=str)
    ]
    assert response["errors"] == expected and expected
    assert response["td_summaries"] == direct.td_summaries


def test_analyze_honors_config_and_id(service):
    response = service.handle(
        {
            "op": "analyze",
            "program": GOOD_MINI,
            "id": "req-7",
            "config": {"engine": "td", "domain": "simple", "kernel": "bitset"},
        }
    )
    assert response["ok"] and response["id"] == "req-7"
    assert response["engine"] == "td"
    assert response["config"]["flags"]["kernel"] == "bitset"


def test_mini_and_ir_spellings_share_a_shard(service):
    program = compile_minioo(GOOD_MINI)
    as_ir = format_program(program)
    r1 = service.handle({"op": "analyze", "program": GOOD_MINI})
    r2 = service.handle({"op": "analyze", "program": as_ir, "format": "ir"})
    assert r1["shard"] == r2["shard"] == program_digest(program)[:16]
    assert not r2["cold"] and r2["work"] == 0


def test_different_programs_get_different_shards(service, tmp_path):
    r1 = service.handle({"op": "analyze", "program": GOOD_MINI})
    r2 = service.handle({"op": "analyze", "program": BAD_MINI})
    assert r1["shard"] != r2["shard"]
    shard_dirs = [p.name for p in (tmp_path / "root").iterdir() if p.is_dir()]
    assert sorted(shard_dirs) == sorted([r1["shard"], r2["shard"]])


def test_non_store_engine_runs_direct(service):
    response = service.handle(
        {"op": "analyze", "program": GOOD_MINI, "config": {"engine": "bu"}}
    )
    assert response["ok"] and response["stored"] is False
    assert response["errors"] == []
    assert response["bu_summaries"] > 0


def test_edit_reports_invalidation(service):
    service.handle({"op": "analyze", "program": GOOD_MINI})
    response = service.handle({"op": "edit", "program": EDITED_MINI})
    # A changed program is a different shard (content-addressed), so
    # the edit is cold there but still reports its own added procs.
    assert response["ok"] and response["op"] == "edit"
    assert "Extra$noop" in response["added"]
    direct = run_typestate(
        compile_minioo(EDITED_MINI), FILE_PROPERTY, engine="swift", domain="full"
    )
    assert response["errors"] == [
        [str(point), site] for point, site in sorted(direct.errors, key=str)
    ]


# -- coalescing -----------------------------------------------------------------------
def test_concurrent_same_key_requests_coalesce(service, monkeypatch):
    release = threading.Event()
    entered = threading.Event()
    real = daemon_mod.analyze_with_store

    def gated(*args, **kwargs):
        entered.set()
        assert release.wait(10), "leader was never released"
        return real(*args, **kwargs)

    monkeypatch.setattr(daemon_mod, "analyze_with_store", gated)
    request = {"op": "analyze", "program": GOOD_MINI}
    with ThreadPoolExecutor(max_workers=3) as pool:
        leader = pool.submit(service.handle, dict(request))
        assert entered.wait(10)
        followers = [pool.submit(service.handle, dict(request)) for _ in range(2)]
        deadline = time.monotonic() + 10
        while service.coalesced < 2:
            assert time.monotonic() < deadline, "followers never coalesced"
            time.sleep(0.01)
        release.set()
        lead, follows = leader.result(10), [f.result(10) for f in followers]
    assert lead["ok"] and lead["coalesced"] is False
    for resp in follows:
        assert resp["ok"] and resp["coalesced"] is True
        assert resp["errors"] == lead["errors"]
        assert resp["work"] == lead["work"]
    assert service.solves == 1  # one solve fanned out to three waiters


def test_different_keys_do_not_coalesce(service):
    with ThreadPoolExecutor(max_workers=2) as pool:
        a = pool.submit(
            service.handle, {"op": "analyze", "program": GOOD_MINI}
        )
        b = pool.submit(
            service.handle, {"op": "analyze", "program": BAD_MINI}
        )
        ra, rb = a.result(30), b.result(30)
    assert ra["ok"] and rb["ok"]
    assert service.coalesced == 0 and service.solves == 2


# -- resident LRU ---------------------------------------------------------------------
def test_lru_eviction_under_config_churn(tmp_path):
    service = AnalysisService(tmp_path, lru_size=1)
    cfg_a = {"engine": "swift", "domain": "full", "k": 2}
    cfg_b = {"engine": "swift", "domain": "full", "k": 3}
    for config in (cfg_a, cfg_b, cfg_a, cfg_b):
        response = service.handle(
            {"op": "analyze", "program": GOOD_MINI, "config": config}
        )
        assert response["ok"] and response["errors"] == []
    stats = service.warm_cache.stats()
    assert stats["capacity"] == 1
    assert stats["evictions"] >= 1
    # Evicted configs still answer correctly from their snapshots.
    again = service.handle(
        {"op": "analyze", "program": GOOD_MINI, "config": cfg_a}
    )
    assert not again["cold"] and again["work"] == 0


def test_warm_requests_hit_resident_cache(service):
    service.handle({"op": "analyze", "program": GOOD_MINI})
    service.handle({"op": "analyze", "program": GOOD_MINI})
    third = service.handle({"op": "analyze", "program": GOOD_MINI})
    assert third["work"] == 0
    assert service.warm_cache.stats()["hits"] >= 1


# -- query / stats --------------------------------------------------------------------
def test_query_before_and_after(service):
    before = service.handle({"op": "query", "program": GOOD_MINI})
    assert before["ok"] and not before["known"]
    assert not before["snapshot"] and not before["resident"]
    service.handle({"op": "analyze", "program": GOOD_MINI})
    mid = service.handle({"op": "query", "program": GOOD_MINI})
    assert mid["known"] and mid["snapshot"]  # solved + saved, not yet decoded
    service.handle({"op": "analyze", "program": GOOD_MINI})  # warm: decodes
    after = service.handle({"op": "query", "program": GOOD_MINI})
    assert after["known"] and after["snapshot"] and after["resident"]
    assert after["result"]["errors"] == []


def test_stats_counts_requests_and_shards(service, tmp_path):
    service.handle({"op": "analyze", "program": GOOD_MINI})
    stats = service.handle({"op": "stats"})
    assert stats["ok"] and stats["requests"] == 2 and stats["solves"] == 1
    assert stats["warm_cache"]["capacity"] == 4
    assert len(stats["shards"]) == 1
    assert stats["shards"][0]["snapshots"] == 1


# -- shutdown -------------------------------------------------------------------------
def test_shutdown_drains_in_flight_requests(service, monkeypatch):
    release = threading.Event()
    entered = threading.Event()
    real = daemon_mod.analyze_with_store

    def gated(*args, **kwargs):
        entered.set()
        assert release.wait(10)
        return real(*args, **kwargs)

    monkeypatch.setattr(daemon_mod, "analyze_with_store", gated)
    with ThreadPoolExecutor(max_workers=2) as pool:
        slow = pool.submit(
            service.handle, {"op": "analyze", "program": GOOD_MINI}
        )
        assert entered.wait(10)
        stop = pool.submit(service.handle, {"op": "shutdown"})
        time.sleep(0.1)
        assert not stop.done()  # draining: waits for the in-flight solve
        release.set()
        assert stop.result(10)["ok"]
        assert slow.result(10)["ok"]  # the in-flight request completed
    refused = service.handle({"op": "analyze", "program": GOOD_MINI})
    assert not refused["ok"] and "shutting down" in refused["error"]


# -- error handling -------------------------------------------------------------------
def test_bad_requests_become_error_responses(service):
    assert not service.handle({"op": "nope"})["ok"]
    assert not service.handle(["not", "an", "object"])["ok"]
    no_program = service.handle({"op": "analyze"})
    assert not no_program["ok"] and "program" in no_program["error"]
    bad_parse = service.handle({"op": "analyze", "program": "class {{{"})
    assert not bad_parse["ok"] and "parse" in bad_parse["error"]
    bad_engine = service.handle(
        {"op": "analyze", "program": GOOD_MINI, "config": {"engine": "magic"}}
    )
    assert not bad_engine["ok"]
    bad_domain = service.handle(
        {"op": "analyze", "program": GOOD_MINI, "config": {"domain": "killgen"}}
    )
    assert not bad_domain["ok"] and "type-state" in bad_domain["error"]
    # The daemon survived all of it.
    assert service.handle({"op": "analyze", "program": GOOD_MINI})["ok"]


def test_config_from_json_validation():
    config = config_from_json(
        {"engine": "td", "k": 3, "budget": {"max_work": 10}}
    )
    assert config.engine == "td" and config.k == 3
    assert config.budget.max_work == 10
    assert config.domain == "typestate-full"  # service default = verify's
    assert config_from_json(None).engine == "swift"
    with pytest.raises(ProtocolError, match="unknown config key"):
        config_from_json({"engin": "td"})
    with pytest.raises(ProtocolError, match="budget"):
        config_from_json({"budget": {"max_wark": 10}})
    with pytest.raises(ProtocolError, match="tracked_sites"):
        config_from_json({"tracked_sites": "h1"})
    with pytest.raises(ProtocolError):
        config_from_json({"engine": "warp-drive"})
    with pytest.raises(ProtocolError):
        config_from_json("not an object")
    sites = config_from_json({"tracked_sites": ["h1", "h2"]})
    assert sites.tracked_sites == frozenset({"h1", "h2"})


# -- trace streaming ------------------------------------------------------------------
def test_trace_streams_to_the_emit_callback(service):
    events = []
    response = service.handle(
        {"op": "analyze", "program": GOOD_MINI, "trace": True},
        emit=events.append,
    )
    assert response["ok"]
    assert response["trace_events"] == len(events) > 0
    kinds = {event["kind"] for event in events}
    assert "propagate" in kinds


def test_trace_callback_failure_does_not_fail_the_run(service):
    calls = []

    def broken(event):
        calls.append(event)
        raise OSError("client went away")

    response = service.handle(
        {"op": "analyze", "program": GOOD_MINI, "trace": True}, emit=broken
    )
    assert response["ok"]
    assert response["trace_events"] == 0 and len(calls) == 1


# -- stdio front end ------------------------------------------------------------------
def test_stdio_frontend_round_trip(service):
    requests = [
        {"op": "analyze", "program": GOOD_MINI, "id": 1},
        {"op": "analyze", "program": GOOD_MINI, "id": 2},
        {"op": "stats", "id": 3},
        {"op": "shutdown", "id": 4},
    ]
    reader = io.StringIO(
        "".join(json.dumps(request) + "\n" for request in requests)
        + "not json\n"  # after shutdown: never read
    )
    writer = io.StringIO()
    assert StdioFrontend(service, reader, writer).serve() == 0
    lines = [json.loads(line) for line in writer.getvalue().splitlines()]
    by_id = {line.get("id"): line for line in lines}
    assert by_id[1]["ok"] and by_id[2]["ok"] and by_id[3]["ok"]
    assert by_id[4]["ok"] and by_id[4]["op"] == "shutdown"
    warm = by_id[2]
    assert warm["work"] == 0 or warm["coalesced"]
    assert lines[-1]["op"] == "shutdown"  # drain: shutdown answered last


def test_stdio_frontend_reports_bad_json_and_continues(service):
    reader = io.StringIO(
        "this is not json\n"
        + json.dumps({"op": "stats", "id": 1})
        + "\n"
        + json.dumps({"op": "shutdown", "id": 2})
        + "\n"
    )
    writer = io.StringIO()
    StdioFrontend(service, reader, writer).serve()
    lines = [json.loads(line) for line in writer.getvalue().splitlines()]
    assert any(not line["ok"] and "JSON" in line["error"] for line in lines)
    assert any(line.get("id") == 1 and line["ok"] for line in lines)


def test_stdio_trace_lines_carry_the_request_id(service):
    reader = io.StringIO(
        json.dumps({"op": "analyze", "program": GOOD_MINI, "id": "t", "trace": True})
        + "\n"
        + json.dumps({"op": "shutdown"})
        + "\n"
    )
    writer = io.StringIO()
    StdioFrontend(service, reader, writer).serve()
    lines = [json.loads(line) for line in writer.getvalue().splitlines()]
    traces = [line for line in lines if "trace" in line and "ok" not in line]
    assert traces and all(line["id"] == "t" for line in traces)
    response = next(line for line in lines if line.get("id") == "t" and "ok" in line)
    assert response["trace_events"] == len(traces)


# -- HTTP front end + client ----------------------------------------------------------
@pytest.fixture
def http_service(tmp_path):
    service = AnalysisService(tmp_path / "http-root", lru_size=4)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    assert client.wait_ready(10)
    yield service, client, thread
    if thread.is_alive():
        server.shutdown()
        thread.join(5)
    server.server_close()


def test_http_round_trip_and_shutdown(http_service):
    service, client, thread = http_service
    first = client.analyze(GOOD_MINI)
    assert first["cold"] and first["errors"] == []
    second = client.analyze(GOOD_MINI)
    assert not second["cold"] and second["work"] == 0
    stats = client.stats()
    assert stats["requests"] == 3
    assert client.shutdown()["ok"]
    thread.join(5)
    assert not thread.is_alive()


def test_http_trace_streaming(http_service):
    _, client, _ = http_service
    events = []
    response = client.analyze(BAD_MINI, trace=True, on_trace=events.append)
    assert response["ok"] and response["errors"]
    assert len(events) == response["trace_events"] > 0


def test_http_error_becomes_service_error(http_service):
    _, client, _ = http_service
    with pytest.raises(ServiceError, match="unknown op"):
        client.call({"op": "frobnicate"})


def test_http_concurrent_clients_coalesce_or_reuse(http_service):
    service, client, _ = http_service
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [
            pool.submit(client.analyze, GOOD_MINI, request_id=i)
            for i in range(4)
        ]
        responses = [f.result(60) for f in futures]
    assert all(r["ok"] and r["errors"] == [] for r in responses)
    # However the requests interleaved, the service never solved the
    # same key twice concurrently: solves + coalesced + warm hits
    # account for all four.
    assert service.solves + service.coalesced + sum(
        1 for r in responses if not r["cold"] and not r["coalesced"]
    ) >= 4
